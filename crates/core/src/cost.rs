//! Superstep and pattern cost evaluation.
//!
//! The central charge of the paper (§2): a superstep in which every
//! processor issues at most `h` requests and every bank receives at most
//! `R` requests costs `max(L, g·h, d·R)` cycles on the (d,x)-BSP. The
//! plain BSP drops the `d·R` term (equivalently assumes `d ≤ g`,
//! `x = 1`). This module evaluates both charges, for raw `(h, R)`
//! aggregates and for full [`AccessPattern`]s under a [`BankMap`].

use serde::{Deserialize, Serialize};

use crate::bankmap::BankMap;
use crate::delay::BankDelayModel;
use crate::params::MachineParams;
use crate::pattern::AccessPattern;

/// Which model to charge a pattern under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostModel {
    /// Valiant's BSP: `max(L, g·h)`.
    Bsp,
    /// The paper's extension: `max(L, g·h, d·R)`.
    DxBsp,
}

/// The three competing terms of a (d,x)-BSP superstep charge, kept
/// separate so experiments can report *which* resource bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// The latency/synchronization term `L`.
    pub latency: u64,
    /// The processor/network bandwidth term `g·h`.
    pub processor: u64,
    /// The memory-bank term: `d·R` under a uniform delay, and the
    /// generalized `max_b d_b·R_b` under a [`BankDelayModel`] (zero
    /// under the plain BSP).
    pub bank: u64,
    /// The bank realizing the bank term's maximum — set only when the
    /// charge was evaluated under a non-uniform delay model, where
    /// *which* bank binds is part of the story (under a uniform `d` the
    /// binding bank is just any most-loaded one).
    #[serde(default)]
    pub bound_bank: Option<u32>,
}

impl CostBreakdown {
    /// A breakdown from the three uniform-delay terms.
    #[must_use]
    pub fn new(latency: u64, processor: u64, bank: u64) -> Self {
        Self { latency, processor, bank, bound_bank: None }
    }
    /// The superstep charge: the maximum of the three terms.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.latency.max(self.processor).max(self.bank)
    }

    /// Which term is binding (`"latency"`, `"processor"` or `"bank"`,
    /// with ties broken in that order).
    #[must_use]
    pub fn binding(&self) -> &'static str {
        let t = self.total();
        if self.latency == t {
            "latency"
        } else if self.processor == t {
            "processor"
        } else {
            "bank"
        }
    }
}

/// (d,x)-BSP superstep cost from raw aggregates: `max(L, g·h, d·R)`.
#[must_use]
pub fn superstep_cost(m: &MachineParams, h: usize, r: usize) -> u64 {
    superstep_breakdown(m, h, r).total()
}

/// The per-term breakdown of [`superstep_cost`].
#[must_use]
pub fn superstep_breakdown(m: &MachineParams, h: usize, r: usize) -> CostBreakdown {
    CostBreakdown::new(m.l, m.g * h as u64, m.d * r as u64)
}

/// Plain-BSP superstep cost: `max(L, g·h)`.
#[must_use]
pub fn bsp_superstep_cost(m: &MachineParams, h: usize) -> u64 {
    m.l.max(m.g * h as u64)
}

/// Charges a full access pattern under `model`, computing `h` from the
/// pattern and `R` from the pattern and `map`.
///
/// Under [`CostModel::Bsp`] the map is ignored (the BSP has no banks).
///
/// # Example
///
/// ```
/// use dxbsp_core::{pattern_cost, AccessPattern, CostModel, Interleaved, MachineParams};
///
/// let m = MachineParams::new(4, 1, 0, 8, 2);
/// let map = Interleaved::new(m.banks());
/// // All 16 writes to one address: location contention 16.
/// let pat = AccessPattern::scatter(4, &vec![42u64; 16]);
/// let dx = pattern_cost(&m, &pat, &map, CostModel::DxBsp);
/// let bsp = pattern_cost(&m, &pat, &map, CostModel::Bsp);
/// assert_eq!(bsp, 4);        // g·h = 1·(16/4)
/// assert_eq!(dx, 8 * 16);    // d·R dominates: all 16 on one bank
/// ```
#[must_use]
pub fn pattern_cost<M: BankMap>(
    m: &MachineParams,
    pat: &AccessPattern,
    map: &M,
    model: CostModel,
) -> u64 {
    pattern_breakdown(m, pat, map, model).total()
}

/// The per-term breakdown of [`pattern_cost`].
#[must_use]
pub fn pattern_breakdown<M: BankMap>(
    m: &MachineParams,
    pat: &AccessPattern,
    map: &M,
    model: CostModel,
) -> CostBreakdown {
    let h = pat.contention_profile().max_processor_load;
    let r = match model {
        CostModel::Bsp => 0,
        CostModel::DxBsp => pat.max_bank_load(map),
    };
    CostBreakdown::new(
        m.l,
        m.g * h as u64,
        match model {
            CostModel::Bsp => 0,
            CostModel::DxBsp => m.d * r as u64,
        },
    )
}

/// The bank term of `max(L, g·h, max_b d_b·R_b)` under a
/// [`BankDelayModel`]: the maximum over banks of that bank's delay
/// times its load, together with the bank realizing it. Collapses to
/// `(d·R, most-loaded bank)` for uniform models.
#[must_use]
pub fn delayed_bank_term(delay: &BankDelayModel, bank_loads: &[usize]) -> (u64, Option<u32>) {
    let mut best = 0u64;
    let mut who: Option<u32> = None;
    for (b, &load) in bank_loads.iter().enumerate() {
        if load == 0 {
            continue;
        }
        let term = delay.service(b) * load as u64;
        if term > best {
            best = term;
            who = Some(b as u32);
        }
    }
    (best, who)
}

/// Charges a full access pattern under the (d,x)-BSP with a
/// heterogeneous [`BankDelayModel`]: `max(L, g·h, max_b d_b·R_b)`.
///
/// For a uniform model this is exactly [`pattern_breakdown`] under
/// [`CostModel::DxBsp`] — same terms, `bound_bank` left unset — so the
/// scalar-`d` callers and their pinned outputs are unchanged. For a
/// non-uniform model the bank term weighs each bank's load by its own
/// delay and `bound_bank` names the bank that binds, which is how the
/// mixed-tier experiments show the uniform-`d` prediction missing.
#[must_use]
pub fn pattern_breakdown_delayed<M: BankMap>(
    m: &MachineParams,
    delay: &BankDelayModel,
    pat: &AccessPattern,
    map: &M,
) -> CostBreakdown {
    if let Some(d) = delay.as_uniform() {
        let scalar = MachineParams { d, ..*m };
        return pattern_breakdown(&scalar, pat, map, CostModel::DxBsp);
    }
    let h = pat.contention_profile().max_processor_load;
    let (bank, bound_bank) = delayed_bank_term(delay, &pat.bank_loads(map));
    CostBreakdown { latency: m.l, processor: m.g * h as u64, bank, bound_bank }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bankmap::Interleaved;
    use crate::pattern::Request;

    fn machine() -> MachineParams {
        MachineParams::new(4, 1, 10, 6, 4)
    }

    #[test]
    fn superstep_cost_is_max_of_terms() {
        let m = machine();
        assert_eq!(superstep_cost(&m, 0, 0), 10); // latency floor
        assert_eq!(superstep_cost(&m, 100, 0), 100); // g·h
        assert_eq!(superstep_cost(&m, 1, 50), 300); // d·R
    }

    #[test]
    fn breakdown_identifies_binding_term() {
        let m = machine();
        assert_eq!(superstep_breakdown(&m, 0, 0).binding(), "latency");
        assert_eq!(superstep_breakdown(&m, 100, 1).binding(), "processor");
        assert_eq!(superstep_breakdown(&m, 1, 100).binding(), "bank");
    }

    #[test]
    fn bsp_cost_ignores_banks() {
        let m = machine();
        assert_eq!(bsp_superstep_cost(&m, 3), 10); // latency floor
        assert_eq!(bsp_superstep_cost(&m, 30), 30);
    }

    #[test]
    fn dxbsp_at_least_bsp_on_any_pattern() {
        let m = machine();
        let map = Interleaved::new(m.banks());
        let mut pat = AccessPattern::new(4);
        for i in 0..40u64 {
            pat.push(Request::write((i % 4) as usize, i * 7 % 13));
        }
        let bsp = pattern_cost(&m, &pat, &map, CostModel::Bsp);
        let dx = pattern_cost(&m, &pat, &map, CostModel::DxBsp);
        assert!(dx >= bsp);
    }

    #[test]
    fn hot_location_dominates_dxbsp_cost() {
        let m = MachineParams::new(4, 1, 0, 6, 16);
        let map = Interleaved::new(m.banks());
        let pat = AccessPattern::scatter(4, &vec![7u64; 64]);
        // 64 requests on one bank at 6 cycles each.
        assert_eq!(pattern_cost(&m, &pat, &map, CostModel::DxBsp), 6 * 64);
        // BSP sees only the h = 16 per-processor load.
        assert_eq!(pattern_cost(&m, &pat, &map, CostModel::Bsp), 16);
    }

    #[test]
    fn empty_pattern_costs_latency() {
        let m = machine();
        let map = Interleaved::new(m.banks());
        let pat = AccessPattern::new(4);
        assert_eq!(pattern_cost(&m, &pat, &map, CostModel::DxBsp), m.l);
    }

    #[test]
    fn delayed_breakdown_matches_uniform_for_uniform_models() {
        use crate::delay::BankDelayModel;
        let m = machine();
        let map = Interleaved::new(m.banks());
        let mut pat = AccessPattern::new(4);
        for i in 0..40u64 {
            pat.push(Request::write((i % 4) as usize, i * 7 % 13));
        }
        for model in [BankDelayModel::uniform(m.d), BankDelayModel::per_bank(vec![m.d; m.banks()])]
        {
            let delayed = pattern_breakdown_delayed(&m, &model, &pat, &map);
            assert_eq!(delayed, pattern_breakdown(&m, &pat, &map, CostModel::DxBsp));
            assert_eq!(delayed.bound_bank, None);
        }
    }

    #[test]
    fn delayed_breakdown_weighs_each_bank_by_its_own_delay() {
        use crate::delay::BankDelayModel;
        // 4 banks: two fast (d=2), two slow (d=20). 8 requests on fast
        // bank 0, 1 request on slow bank 2.
        let m = MachineParams::new(1, 1, 0, 20, 4);
        let map = Interleaved::new(4);
        let mut pat = AccessPattern::new(1);
        for _ in 0..8 {
            pat.push(Request::write(0, 0));
        }
        pat.push(Request::write(0, 2));
        let model = BankDelayModel::per_bank(vec![2, 2, 20, 20]);
        let bd = pattern_breakdown_delayed(&m, &model, &pat, &map);
        // max_b d_b·R_b = max(2·8, 20·1) = 20 at bank 2 — while the
        // uniform-summary model (d = 20) would charge 20·8 = 160 for
        // the most-loaded bank.
        assert_eq!(bd.bank, 20);
        assert_eq!(bd.bound_bank, Some(2));
        let uniform = pattern_breakdown(&m, &pat, &map, CostModel::DxBsp);
        assert_eq!(uniform.bank, 160);
        assert_ne!(uniform.binding(), "latency");
    }

    #[test]
    fn delayed_bank_term_skips_idle_banks() {
        use crate::delay::BankDelayModel;
        let model = BankDelayModel::per_bank(vec![50, 1, 3]);
        let (term, who) = delayed_bank_term(&model, &[0, 4, 2]);
        assert_eq!((term, who), (6, Some(2)));
        assert_eq!(delayed_bank_term(&model, &[0, 0, 0]), (0, None));
    }
}
