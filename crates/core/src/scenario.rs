//! Declarative experiment scenarios.
//!
//! A [`Scenario`] is the serializable description of one experiment: a
//! machine (preset plus overrides), a workload family, sweep axes, the
//! cost models to attach as predictions, and kind-specific parameters.
//! Every built-in experiment in `dxbsp-bench` is a `Scenario` value, and
//! user-authored TOML/JSON files decode into the same type, so "add an
//! experiment" is a data change, not a code change.
//!
//! Scenarios are validated at construction ([`Scenario::validate`]) and
//! round-trip through TOML and JSON via [`crate::spec::SpecValue`]:
//!
//! ```
//! use dxbsp_core::scenario::Scenario;
//! let text = r#"
//! name = "demo"
//! kind = "scatter-sweep"
//! seed = 1995
//! n = 8192
//!
//! [machine]
//! preset = "j90"
//!
//! [workload]
//! family = "hotspot"
//! range = 1099511627776
//!
//! [sweep]
//! k = [1, 64, 4096]
//! "#;
//! let sc = Scenario::from_toml(text).unwrap();
//! assert_eq!(sc.sweep.size(), 3);
//! assert_eq!(Scenario::from_toml(&sc.to_toml()).unwrap(), sc);
//! ```

use crate::classify::{EngineKind, ExecMode};
use crate::delay::BankDelayModel;
use crate::error::DxError;
use crate::params::MachineParams;
use crate::presets;
use crate::spec::SpecValue;

/// One tier of a tiered machine delay: the half-open bank range
/// `start..end` shares the service delay `d`. The TOML form is
/// `tiers = [{ banks = "0..128", d = 6 }, { banks = "128..256", d = 14 }]`;
/// tiers must tile the machine's banks contiguously from 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayTierSpec {
    /// First bank of the tier (inclusive).
    pub start: usize,
    /// One past the last bank of the tier.
    pub end: usize,
    /// Service delay of every bank in the tier.
    pub d: u64,
}

impl DelayTierSpec {
    /// A tier covering `start..end` at delay `d`.
    #[must_use]
    pub fn new(start: usize, end: usize, d: u64) -> Self {
        DelayTierSpec { start, end, d }
    }
}

/// A machine description: an optional named preset plus per-parameter
/// overrides. `resolve()` turns it into concrete [`MachineParams`];
/// [`MachineSpec::resolve_model`] additionally yields the
/// [`BankDelayModel`] when the spec describes non-uniform bank delays.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MachineSpec {
    /// Named base machine: `"c90"` (Cray C90), `"j90"` (Cray J90), or
    /// `"mixed"` (the fused C90/J90 mixed-tier machine).
    pub preset: Option<String>,
    /// Processor-count override.
    pub p: Option<usize>,
    /// Gap (per-request issue cost) override.
    pub g: Option<u64>,
    /// Latency/synchronization override.
    pub l: Option<u64>,
    /// Bank-delay override (`d = 6`; `delay = 6` is an accepted alias).
    pub d: Option<u64>,
    /// Expansion-factor (banks per processor) override.
    pub x: Option<usize>,
    /// Explicit per-bank delay vector
    /// (TOML `[machine.delay]` / `delay = { per_bank = [...] }`).
    pub per_bank: Option<Vec<u64>>,
    /// Tiered delay shorthand; see [`DelayTierSpec`].
    pub tiers: Vec<DelayTierSpec>,
}

impl MachineSpec {
    /// A spec that is exactly a named preset.
    #[must_use]
    pub fn preset(name: &str) -> Self {
        MachineSpec { preset: Some(name.to_string()), ..MachineSpec::default() }
    }

    /// Look up a preset machine by name.
    ///
    /// # Errors
    ///
    /// [`DxError::Unknown`] for names outside the registry.
    pub fn lookup_preset(name: &str) -> Result<MachineParams, DxError> {
        Self::lookup_preset_model(name).map(|(m, _)| m)
    }

    /// Look up a preset machine together with its bank-delay model.
    /// Uniform-delay presets (`c90`, `j90`) pair with
    /// `Uniform(d)`; the `mixed` preset carries the C90/J90 fused
    /// per-bank tiers.
    ///
    /// # Errors
    ///
    /// [`DxError::Unknown`] for names outside the registry.
    pub fn lookup_preset_model(name: &str) -> Result<(MachineParams, BankDelayModel), DxError> {
        match name {
            "c90" | "cray-c90" => Ok((presets::cray_c90(), BankDelayModel::uniform(6))),
            "j90" | "cray-j90" => Ok((presets::cray_j90(), BankDelayModel::uniform(14))),
            "mixed" | "mixed-tier" => Ok((presets::mixed_tier(), presets::mixed_tier_delay())),
            _ => Err(DxError::unknown("machine preset", name)),
        }
    }

    /// Resolve to concrete parameters: preset (or the defaults `g=1`,
    /// `l=0` when absent) with the overrides applied. For specs with
    /// non-uniform delays the scalar `d` is the model's summary (the
    /// slowest bank); see [`MachineSpec::resolve_model`].
    ///
    /// # Errors
    ///
    /// [`DxError::Unknown`] for an unknown preset; [`DxError::Invalid`]
    /// if no preset is given and `p`/`d`/`x` are not all present, or if
    /// any resolved parameter is zero where the model requires ≥ 1.
    pub fn resolve(&self) -> Result<MachineParams, DxError> {
        self.resolve_model().map(|(m, _)| m)
    }

    /// Resolve to concrete parameters plus the bank-delay model.
    ///
    /// The model comes from, in priority order: `delay.per_bank`,
    /// `tiers`, a scalar `d` override, the preset's own model. The
    /// returned [`MachineParams::d`] is the model's
    /// [`uniform_summary`](BankDelayModel::uniform_summary) (exact for
    /// uniform models, the slowest bank otherwise), so all scalar-`d`
    /// consumers stay conservative.
    ///
    /// # Errors
    ///
    /// Everything [`MachineSpec::resolve`] rejects, plus
    /// [`DxError::Invalid`] for conflicting delay descriptions
    /// (`d` next to `per_bank`/`tiers`, or both of those), tiers that
    /// do not tile the banks, and model/machine shape mismatches.
    pub fn resolve_model(&self) -> Result<(MachineParams, BankDelayModel), DxError> {
        let (p, g, l, d, x, preset_model) = match &self.preset {
            Some(name) => {
                let (base, model) = Self::lookup_preset_model(name)?;
                (base.p, base.g, base.l, base.d, base.x, Some(model))
            }
            None => {
                let (Some(p), Some(x)) = (self.p, self.x) else {
                    return Err(DxError::invalid(
                        "machine: give a `preset` or all of `p`, `d`, `x`",
                    ));
                };
                let d = match self.d {
                    Some(d) => d,
                    None if self.per_bank.is_some() || !self.tiers.is_empty() => 1,
                    None => {
                        return Err(DxError::invalid(
                            "machine: give a `preset` or all of `p`, `d`, `x`",
                        ))
                    }
                };
                (p, self.g.unwrap_or(1), self.l.unwrap_or(0), d, x, None)
            }
        };
        let p = self.p.unwrap_or(p);
        let g = self.g.unwrap_or(g);
        let l = self.l.unwrap_or(l);
        let d = self.d.unwrap_or(d);
        let x = self.x.unwrap_or(x);
        let banks = p
            .checked_mul(x)
            .ok_or_else(|| DxError::invalid("machine: bank count p*x overflows"))?;

        if self.per_bank.is_some() && !self.tiers.is_empty() {
            return Err(DxError::invalid("machine: give `delay.per_bank` or `tiers`, not both"));
        }
        if self.d.is_some() && (self.per_bank.is_some() || !self.tiers.is_empty()) {
            return Err(DxError::invalid(
                "machine: give `d` or a non-uniform delay (`delay.per_bank`/`tiers`), not both",
            ));
        }
        let model = if let Some(per_bank) = &self.per_bank {
            BankDelayModel::per_bank(per_bank.clone())
        } else if !self.tiers.is_empty() {
            let mut delays = Vec::with_capacity(banks);
            for tier in &self.tiers {
                if tier.start != delays.len() || tier.end <= tier.start {
                    return Err(DxError::invalid(format!(
                        "machine: tiers must tile the banks contiguously from 0; \
                         tier {}..{} starts at bank {}",
                        tier.start,
                        tier.end,
                        delays.len()
                    )));
                }
                delays.resize(tier.end, tier.d);
            }
            if delays.len() != banks {
                return Err(DxError::invalid(format!(
                    "machine: tiers cover {} banks, machine has {banks}",
                    delays.len()
                )));
            }
            BankDelayModel::per_bank(delays)
        } else if self.d.is_some() || preset_model.is_none() {
            BankDelayModel::uniform(d)
        } else {
            preset_model.unwrap_or(BankDelayModel::Uniform(d))
        };
        model.validate(p, banks)?;
        let m = MachineParams::try_new(p, g, l, model.uniform_summary(), x)?;
        Ok((m, model))
    }

    /// Whether the spec describes non-uniform bank delays (an explicit
    /// `per_bank` vector, `tiers`, or a non-uniform preset like
    /// `mixed`). Errors count as uniform — validation reports them.
    #[must_use]
    pub fn has_nonuniform_delay(&self) -> bool {
        self.resolve_model().map(|(_, dm)| dm.as_uniform().is_none()).unwrap_or(false)
    }

    fn to_value(&self) -> SpecValue {
        let mut t = SpecValue::table();
        if let Some(preset) = &self.preset {
            t.set("preset", SpecValue::Str(preset.clone()));
        }
        for (key, v) in [("p", self.p.map(|v| v as i64)), ("x", self.x.map(|v| v as i64))] {
            if let Some(v) = v {
                t.set(key, SpecValue::Int(v));
            }
        }
        #[allow(clippy::cast_possible_wrap)]
        for (key, v) in [("g", self.g), ("l", self.l), ("d", self.d)] {
            if let Some(v) = v {
                t.set(key, SpecValue::Int(v as i64));
            }
        }
        #[allow(clippy::cast_possible_wrap)]
        if !self.tiers.is_empty() {
            let tiers = self
                .tiers
                .iter()
                .map(|tier| {
                    let mut row = SpecValue::table();
                    row.set("banks", SpecValue::Str(format!("{}..{}", tier.start, tier.end)));
                    row.set("d", SpecValue::Int(tier.d as i64));
                    row
                })
                .collect();
            t.set("tiers", SpecValue::List(tiers));
        }
        #[allow(clippy::cast_possible_wrap)]
        if let Some(per_bank) = &self.per_bank {
            let mut delay = SpecValue::table();
            delay.set(
                "per_bank",
                SpecValue::List(per_bank.iter().map(|&d| SpecValue::Int(d as i64)).collect()),
            );
            t.set("delay", delay);
        }
        t
    }

    fn from_value(v: &SpecValue) -> Result<Self, DxError> {
        let entries = v.as_table().ok_or_else(|| DxError::invalid("machine: expected a table"))?;
        let mut spec = MachineSpec::default();
        let set_d = |spec: &mut MachineSpec, d: u64| -> Result<(), DxError> {
            if spec.d.is_some() {
                return Err(DxError::invalid("machine: give `d` or `delay`, not both"));
            }
            spec.d = Some(d);
            Ok(())
        };
        for (key, value) in entries {
            match key.as_str() {
                "preset" => spec.preset = Some(req_str(value, "machine.preset")?.to_string()),
                "p" => spec.p = Some(req_usize(value, "machine.p")?),
                "g" => spec.g = Some(req_u64(value, "machine.g")?),
                "l" => spec.l = Some(req_u64(value, "machine.l")?),
                "d" => set_d(&mut spec, req_u64(value, "machine.d")?)?,
                "x" => spec.x = Some(req_usize(value, "machine.x")?),
                // `delay = 6` is a uniform alias for `d`; the table form
                // `delay = { per_bank = [...] }` gives explicit delays.
                "delay" => match value {
                    SpecValue::Int(_) => set_d(&mut spec, req_u64(value, "machine.delay")?)?,
                    SpecValue::Table(_) => {
                        let list = value
                            .get("per_bank")
                            .ok_or_else(|| {
                                DxError::invalid("machine.delay: table form needs `per_bank`")
                            })?
                            .as_list()
                            .ok_or_else(|| {
                                DxError::invalid("machine.delay.per_bank: expected a list")
                            })?;
                        spec.per_bank = Some(
                            list.iter()
                                .map(|item| req_u64(item, "machine.delay.per_bank"))
                                .collect::<Result<_, _>>()?,
                        );
                    }
                    other => {
                        return Err(DxError::invalid(format!(
                            "machine.delay: expected an integer or a table, got {}",
                            other.type_name()
                        )))
                    }
                },
                "tiers" => {
                    let list = value
                        .as_list()
                        .ok_or_else(|| DxError::invalid("machine.tiers: expected a list"))?;
                    spec.tiers = list
                        .iter()
                        .map(|item| {
                            let banks = item
                                .get("banks")
                                .ok_or_else(|| DxError::invalid("machine.tiers: needs `banks`"))
                                .and_then(|b| req_str(b, "machine.tiers.banks"))?;
                            let (start, end) = parse_bank_range(banks)?;
                            let d = item
                                .get("d")
                                .ok_or_else(|| DxError::invalid("machine.tiers: needs `d`"))
                                .and_then(|d| req_u64(d, "machine.tiers.d"))?;
                            Ok(DelayTierSpec::new(start, end, d))
                        })
                        .collect::<Result<Vec<_>, DxError>>()?;
                }
                other => return Err(DxError::invalid(format!("machine: unknown key `{other}`"))),
            }
        }
        Ok(spec)
    }
}

/// Parses the tier bank-range syntax `"start..end"` (half-open).
fn parse_bank_range(s: &str) -> Result<(usize, usize), DxError> {
    let err = || DxError::invalid(format!("machine.tiers.banks: expected `start..end`, got `{s}`"));
    let (a, b) = s.split_once("..").ok_or_else(err)?;
    let start = a.trim().parse::<usize>().map_err(|_| err())?;
    let end = b.trim().parse::<usize>().map_err(|_| err())?;
    if end <= start {
        return Err(DxError::invalid(format!("machine.tiers.banks: empty range `{s}`")));
    }
    Ok((start, end))
}

/// The workload a scenario runs: which family of address vectors (or
/// graphs) the generators in `dxbsp-workloads` should produce.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum WorkloadSpec {
    /// No generated workload — the scenario's kind builds its own
    /// input (algorithm traces, inventories, calibration runs, …).
    #[default]
    None,
    /// Uniform addresses in `[0, range)`.
    Uniform {
        /// Exclusive upper bound of the address space.
        range: u64,
    },
    /// One hot address hit `k` times, background uniform (Experiment 1).
    Hotspot {
        /// Exclusive upper bound of the address space.
        range: u64,
    },
    /// The hot address split into `copies` replicas (Experiment 2).
    DuplicatedHotspot {
        /// Exclusive upper bound of the address space.
        range: u64,
    },
    /// The entropy ladder of Experiment 3: successive butterfly-merge
    /// iterations over a `bits`-bit space.
    Entropy {
        /// Address-space width in bits.
        bits: u32,
        /// Number of ladder levels generated (axis `iter` selects one).
        iterations: u32,
        /// Salt for the family's base RNG stream.
        salt: u64,
    },
    /// Zipf-distributed addresses over `[0, universe)`; the sweep axis
    /// `s` selects the exponent.
    Zipf {
        /// Size of the address universe.
        universe: u64,
    },
    /// NAS-IS-style binomial-hump keys over `bits` bits.
    NasIs {
        /// Address-space width in bits.
        bits: u32,
    },
    /// Deterministic distinct addresses from a golden-ratio stride
    /// (the bank-mapping experiments' address family).
    GoldenDistinct {
        /// Right-shift applied to the multiplied index.
        shift: u32,
    },
    /// The Figure 1 connected-components input: a random `G(n, m)`
    /// graph with a star glued on.
    CcGraph {
        /// Extra edges `(0, leaf)` for `leaf` in `1..star_leaves`.
        star_leaves: usize,
        /// Edge count as a multiple of the node count.
        edges_per_node: usize,
        /// Salt for the graph RNG stream.
        salt: u64,
    },
    /// A named family of graphs (random/grid/chain/star …) selected by
    /// a string-valued `graph` axis; all families draw from one RNG
    /// stream seeded with `salt`, in axis order.
    GraphFamily {
        /// Salt for the shared graph RNG stream.
        salt: u64,
    },
    /// Uniform random sort keys over `bits`-bit values — the input
    /// family of the sorting scenarios (radix passes scale with
    /// `ceil(bits / radix_bits)`).
    SortKeys {
        /// Key width in bits.
        bits: u32,
    },
    /// An out-of-core bulk-synchronous pseudo-streaming kernel over a
    /// virtual array: supersteps are generated chunk by chunk and never
    /// materialize, so peak-resident memory is bounded by the declared
    /// chunk budget regardless of problem size.
    PseudoStream {
        /// Kernel name: `scan`, `reduce`, or `stencil`.
        kernel: String,
        /// Chunk budget — elements resident per generated superstep.
        chunk: usize,
    },
}

impl WorkloadSpec {
    /// The family name used in scenario files.
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            WorkloadSpec::None => "none",
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::Hotspot { .. } => "hotspot",
            WorkloadSpec::DuplicatedHotspot { .. } => "duplicated-hotspot",
            WorkloadSpec::Entropy { .. } => "entropy",
            WorkloadSpec::Zipf { .. } => "zipf",
            WorkloadSpec::NasIs { .. } => "nas-is",
            WorkloadSpec::GoldenDistinct { .. } => "golden-distinct",
            WorkloadSpec::CcGraph { .. } => "cc-graph",
            WorkloadSpec::GraphFamily { .. } => "graph-family",
            WorkloadSpec::SortKeys { .. } => "sort-keys",
            WorkloadSpec::PseudoStream { .. } => "pstream",
        }
    }

    fn validate(&self) -> Result<(), DxError> {
        match *self {
            WorkloadSpec::None | WorkloadSpec::GoldenDistinct { .. } => Ok(()),
            WorkloadSpec::Uniform { range } => {
                check(range >= 1, "workload: uniform needs range >= 1")
            }
            WorkloadSpec::Hotspot { range } => {
                check(range >= 2, "workload: hotspot needs range >= 2")
            }
            WorkloadSpec::DuplicatedHotspot { range } => {
                check(range >= 2, "workload: duplicated-hotspot needs range >= 2")
            }
            WorkloadSpec::Entropy { bits, iterations, .. } => {
                check((1..=62).contains(&bits), "workload: entropy bits must be in 1..=62")?;
                check(iterations >= 1, "workload: entropy needs iterations >= 1")
            }
            WorkloadSpec::Zipf { universe } => {
                check(universe >= 1, "workload: zipf needs universe >= 1")
            }
            WorkloadSpec::NasIs { bits } => {
                check((1..=62).contains(&bits), "workload: nas-is bits must be in 1..=62")
            }
            WorkloadSpec::CcGraph { edges_per_node, .. } => {
                check(edges_per_node >= 1, "workload: cc-graph needs edges_per_node >= 1")
            }
            WorkloadSpec::GraphFamily { .. } => Ok(()),
            WorkloadSpec::SortKeys { bits } => {
                check((1..=62).contains(&bits), "workload: sort-keys bits must be in 1..=62")
            }
            WorkloadSpec::PseudoStream { ref kernel, chunk } => {
                check(
                    matches!(kernel.as_str(), "scan" | "reduce" | "stencil"),
                    "workload: pstream kernel must be `scan`, `reduce`, or `stencil`",
                )?;
                check(chunk >= 1, "workload: pstream needs chunk >= 1")
            }
        }
    }

    #[allow(clippy::cast_possible_wrap)]
    fn to_value(&self) -> SpecValue {
        let mut t = SpecValue::table();
        t.set("family", SpecValue::Str(self.family().to_string()));
        match *self {
            WorkloadSpec::None | WorkloadSpec::GraphFamily { salt: 0 } => {}
            WorkloadSpec::Uniform { range }
            | WorkloadSpec::Hotspot { range }
            | WorkloadSpec::DuplicatedHotspot { range } => {
                t.set("range", SpecValue::Int(range as i64));
            }
            WorkloadSpec::Entropy { bits, iterations, salt } => {
                t.set("bits", SpecValue::Int(i64::from(bits)));
                t.set("iterations", SpecValue::Int(i64::from(iterations)));
                t.set("salt", SpecValue::Int(salt as i64));
            }
            WorkloadSpec::Zipf { universe } => {
                t.set("universe", SpecValue::Int(universe as i64));
            }
            WorkloadSpec::NasIs { bits } => {
                t.set("bits", SpecValue::Int(i64::from(bits)));
            }
            WorkloadSpec::GoldenDistinct { shift } => {
                t.set("shift", SpecValue::Int(i64::from(shift)));
            }
            WorkloadSpec::CcGraph { star_leaves, edges_per_node, salt } => {
                t.set("star_leaves", SpecValue::Int(star_leaves as i64));
                t.set("edges_per_node", SpecValue::Int(edges_per_node as i64));
                t.set("salt", SpecValue::Int(salt as i64));
            }
            WorkloadSpec::GraphFamily { salt } => {
                t.set("salt", SpecValue::Int(salt as i64));
            }
            WorkloadSpec::SortKeys { bits } => {
                t.set("bits", SpecValue::Int(i64::from(bits)));
            }
            WorkloadSpec::PseudoStream { ref kernel, chunk } => {
                t.set("kernel", SpecValue::Str(kernel.clone()));
                t.set("chunk", SpecValue::Int(chunk as i64));
            }
        }
        t
    }

    fn from_value(v: &SpecValue) -> Result<Self, DxError> {
        let entries = v.as_table().ok_or_else(|| DxError::invalid("workload: expected a table"))?;
        let family = v
            .get("family")
            .ok_or_else(|| DxError::invalid("workload: missing `family`"))
            .and_then(|f| req_str(f, "workload.family"))?;
        let allowed: &[&str] = match family {
            "none" => &[],
            "uniform" | "hotspot" | "duplicated-hotspot" => &["range"],
            "entropy" => &["bits", "iterations", "salt"],
            "zipf" => &["universe"],
            "nas-is" => &["bits"],
            "golden-distinct" => &["shift"],
            "cc-graph" => &["star_leaves", "edges_per_node", "salt"],
            "graph-family" => &["salt"],
            "sort-keys" => &["bits"],
            "pstream" => &["kernel", "chunk"],
            other => return Err(DxError::unknown("workload family", other)),
        };
        for (key, _) in entries {
            if key != "family" && !allowed.contains(&key.as_str()) {
                return Err(DxError::invalid(format!(
                    "workload: key `{key}` does not apply to family `{family}`"
                )));
            }
        }
        let int = |key: &str| -> Result<u64, DxError> {
            v.get(key)
                .ok_or_else(|| DxError::invalid(format!("workload: `{family}` needs `{key}`")))
                .and_then(|val| req_u64(val, key))
        };
        let int_or = |key: &str, default: u64| -> Result<u64, DxError> {
            v.get(key).map_or(Ok(default), |val| req_u64(val, key))
        };
        Ok(match family {
            "none" => WorkloadSpec::None,
            "uniform" => WorkloadSpec::Uniform { range: int("range")? },
            "hotspot" => WorkloadSpec::Hotspot { range: int("range")? },
            "duplicated-hotspot" => WorkloadSpec::DuplicatedHotspot { range: int("range")? },
            "entropy" => WorkloadSpec::Entropy {
                bits: u32::try_from(int("bits")?)
                    .map_err(|_| DxError::invalid("workload: entropy bits out of range"))?,
                iterations: u32::try_from(int("iterations")?)
                    .map_err(|_| DxError::invalid("workload: entropy iterations out of range"))?,
                salt: int_or("salt", 0)?,
            },
            "zipf" => WorkloadSpec::Zipf { universe: int("universe")? },
            "nas-is" => WorkloadSpec::NasIs {
                bits: u32::try_from(int("bits")?)
                    .map_err(|_| DxError::invalid("workload: nas-is bits out of range"))?,
            },
            "golden-distinct" => WorkloadSpec::GoldenDistinct {
                shift: u32::try_from(int_or("shift", 4)?)
                    .map_err(|_| DxError::invalid("workload: golden shift out of range"))?,
            },
            "cc-graph" => WorkloadSpec::CcGraph {
                star_leaves: usize::try_from(int_or("star_leaves", 0)?)
                    .map_err(|_| DxError::invalid("workload: star_leaves out of range"))?,
                edges_per_node: usize::try_from(int_or("edges_per_node", 2)?)
                    .map_err(|_| DxError::invalid("workload: edges_per_node out of range"))?,
                salt: int_or("salt", 0)?,
            },
            "graph-family" => WorkloadSpec::GraphFamily { salt: int_or("salt", 0)? },
            "sort-keys" => WorkloadSpec::SortKeys {
                bits: u32::try_from(int("bits")?)
                    .map_err(|_| DxError::invalid("workload: sort-keys bits out of range"))?,
            },
            "pstream" => WorkloadSpec::PseudoStream {
                kernel: v
                    .get("kernel")
                    .ok_or_else(|| DxError::invalid("workload: `pstream` needs `kernel`"))
                    .and_then(|val| req_str(val, "workload.kernel"))?
                    .to_string(),
                chunk: usize::try_from(int("chunk")?)
                    .map_err(|_| DxError::invalid("workload: pstream chunk out of range"))?,
            },
            _ => unreachable!("family checked above"),
        })
    }
}

/// One coordinate of a sweep axis: the values experiments iterate over.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// An integer coordinate (`k`, `n`, `d`, `x`, thread counts, …).
    Int(u64),
    /// A float coordinate (Zipf exponents, …).
    Float(f64),
    /// A symbolic coordinate (preset names, graph families, `"unbounded"`).
    Str(String),
}

impl AxisValue {
    /// Integer value, if this coordinate is an integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AxisValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float value (integers widened), if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AxisValue::Float(v) => Some(*v),
            #[allow(clippy::cast_precision_loss)]
            AxisValue::Int(v) => Some(*v as f64),
            AxisValue::Str(_) => None,
        }
    }

    /// String value, if symbolic.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AxisValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Render for table cells and JSON point coordinates.
    #[must_use]
    pub fn display(&self) -> String {
        match self {
            AxisValue::Int(v) => v.to_string(),
            AxisValue::Float(v) => format!("{v}"),
            AxisValue::Str(v) => v.clone(),
        }
    }

    #[allow(clippy::cast_possible_wrap)]
    fn to_value(&self) -> SpecValue {
        match self {
            AxisValue::Int(v) => SpecValue::Int(*v as i64),
            AxisValue::Float(v) => SpecValue::Float(*v),
            AxisValue::Str(v) => SpecValue::Str(v.clone()),
        }
    }

    fn from_value(v: &SpecValue, axis: &str) -> Result<Self, DxError> {
        match v {
            SpecValue::Int(i) if *i >= 0 => Ok(AxisValue::Int(u64::try_from(*i).unwrap())),
            SpecValue::Int(_) => {
                Err(DxError::invalid(format!("sweep.{axis}: negative axis value")))
            }
            SpecValue::Float(f) => Ok(AxisValue::Float(*f)),
            SpecValue::Str(s) => Ok(AxisValue::Str(s.clone())),
            other => Err(DxError::invalid(format!(
                "sweep.{axis}: axis values must be numbers or strings, got {}",
                other.type_name()
            ))),
        }
    }
}

/// A named sweep axis and the coordinates it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Parameter name (`"k"`, `"n"`, `"d"`, `"x"`, `"machine"`, …).
    pub param: String,
    /// The coordinates, in iteration order.
    pub values: Vec<AxisValue>,
}

impl Axis {
    /// An integer-valued axis.
    #[must_use]
    pub fn ints(param: &str, values: impl IntoIterator<Item = u64>) -> Self {
        Axis { param: param.to_string(), values: values.into_iter().map(AxisValue::Int).collect() }
    }

    /// A float-valued axis.
    #[must_use]
    pub fn floats(param: &str, values: impl IntoIterator<Item = f64>) -> Self {
        Axis {
            param: param.to_string(),
            values: values.into_iter().map(AxisValue::Float).collect(),
        }
    }

    /// A string-valued axis.
    #[must_use]
    pub fn strs<S: Into<String>>(param: &str, values: impl IntoIterator<Item = S>) -> Self {
        Axis {
            param: param.to_string(),
            values: values.into_iter().map(|s| AxisValue::Str(s.into())).collect(),
        }
    }
}

/// The sweep grid: the cartesian product of the axes, first axis
/// outermost (slowest-varying).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sweep {
    /// Axes in declaration order. Order is semantic: it fixes both the
    /// run-matrix iteration order and each point's RNG salt.
    pub axes: Vec<Axis>,
}

impl Sweep {
    /// A sweep over the given axes.
    #[must_use]
    pub fn new(axes: Vec<Axis>) -> Self {
        Sweep { axes }
    }

    /// Number of points in the grid (product of axis lengths; 1 for an
    /// axis-less sweep — a single unparameterized run).
    #[must_use]
    pub fn size(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Expand the grid into concrete points, first axis outermost.
    #[must_use]
    pub fn matrix(&self) -> Vec<SweepPoint> {
        let total = self.size();
        let mut points = Vec::with_capacity(total);
        for flat in 0..total {
            // Mixed-radix decomposition of `flat`, last axis fastest.
            let mut rem = flat;
            let mut indices = vec![0usize; self.axes.len()];
            for (slot, axis) in indices.iter_mut().zip(&self.axes).rev() {
                let len = axis.values.len();
                *slot = rem % len;
                rem /= len;
            }
            let coords = self
                .axes
                .iter()
                .zip(&indices)
                .map(|(axis, &idx)| Coord {
                    axis: axis.param.clone(),
                    value: axis.values[idx].clone(),
                    idx,
                })
                .collect();
            points.push(SweepPoint { coords, index: flat });
        }
        points
    }

    fn to_value(&self) -> SpecValue {
        let mut t = SpecValue::table();
        for axis in &self.axes {
            t.set(
                axis.param.clone(),
                SpecValue::List(axis.values.iter().map(AxisValue::to_value).collect()),
            );
        }
        t
    }

    fn from_value(v: &SpecValue) -> Result<Self, DxError> {
        let entries = v.as_table().ok_or_else(|| DxError::invalid("sweep: expected a table"))?;
        let mut axes = Vec::new();
        for (param, value) in entries {
            let list = value.as_list().ok_or_else(|| {
                DxError::invalid(format!("sweep.{param}: expected a list of values"))
            })?;
            let values = list
                .iter()
                .map(|item| AxisValue::from_value(item, param))
                .collect::<Result<Vec<_>, _>>()?;
            axes.push(Axis { param: param.clone(), values });
        }
        Ok(Sweep { axes })
    }
}

/// One coordinate of a sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct Coord {
    /// The axis this coordinate came from.
    pub axis: String,
    /// The coordinate value.
    pub value: AxisValue,
    /// The value's index within its axis.
    pub idx: usize,
}

/// One point of the expanded run matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Coordinates in axis-declaration order.
    pub coords: Vec<Coord>,
    /// Flat index of this point in the matrix.
    pub index: usize,
}

impl SweepPoint {
    /// The coordinate for axis `param`, if present.
    #[must_use]
    pub fn get(&self, param: &str) -> Option<&AxisValue> {
        self.coords.iter().find(|c| c.axis == param).map(|c| &c.value)
    }

    /// Integer coordinate for axis `param`.
    #[must_use]
    pub fn u64(&self, param: &str) -> Option<u64> {
        self.get(param).and_then(AxisValue::as_u64)
    }

    /// Float coordinate for axis `param`.
    #[must_use]
    pub fn f64(&self, param: &str) -> Option<f64> {
        self.get(param).and_then(AxisValue::as_f64)
    }

    /// String coordinate for axis `param`.
    #[must_use]
    pub fn str(&self, param: &str) -> Option<&str> {
        self.get(param).and_then(AxisValue::as_str)
    }

    /// The point's RNG salt: axis coordinates folded base-256 in axis
    /// order. Integer coordinates contribute their value; float and
    /// string coordinates contribute their index within the axis. A
    /// single integer axis therefore salts with the value itself,
    /// which keeps per-point RNG streams stable when unrelated axes
    /// are reordered only at the byte level, and distinct across the
    /// grid for the small coordinate ranges experiments sweep.
    #[must_use]
    pub fn salt(&self) -> u64 {
        let mut salt = 0u64;
        for c in &self.coords {
            let component = match &c.value {
                AxisValue::Int(v) => *v,
                AxisValue::Float(_) | AxisValue::Str(_) => c.idx as u64,
            };
            salt = salt.wrapping_mul(256).wrapping_add(component);
        }
        salt
    }
}

/// Which execution engine measures the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSel {
    /// The cycle-level bank simulator (the default).
    #[default]
    Simulator,
    /// The analytic reference engine (exact cost accounting, no
    /// cycle-level queueing).
    Reference,
}

impl BackendSel {
    /// The name used in scenario files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendSel::Simulator => "simulator",
            BackendSel::Reference => "reference",
        }
    }

    /// Parse a scenario-file backend name.
    ///
    /// # Errors
    ///
    /// [`DxError::Unknown`] for anything else.
    pub fn from_name(name: &str) -> Result<Self, DxError> {
        match name {
            "simulator" => Ok(BackendSel::Simulator),
            "reference" => Ok(BackendSel::Reference),
            _ => Err(DxError::unknown("backend", name)),
        }
    }
}

/// Cost models whose closed-form predictions can ride along with each
/// measurement.
pub const KNOWN_MODELS: &[&str] = &["dxbsp", "bsp"];

/// A complete, serializable experiment description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Short identifier (`"exp1"`, file-name friendly).
    pub name: String,
    /// Human-readable title for tables and listings.
    pub title: String,
    /// Which executor runs this scenario (`"scatter-sweep"`, …).
    pub kind: String,
    /// Base RNG seed; every sweep point derives its stream from
    /// `(seed, point salt)`.
    pub seed: u64,
    /// Problem size (requests per superstep, elements, nodes) when not
    /// itself a sweep axis.
    pub n: Option<usize>,
    /// The machine under test.
    pub machine: MachineSpec,
    /// The workload family.
    pub workload: WorkloadSpec,
    /// The sweep grid.
    pub sweep: Sweep,
    /// Cost models attached as predictions (`"dxbsp"`, `"bsp"`).
    pub models: Vec<String>,
    /// Execution engine.
    pub backend: BackendSel,
    /// Worker threads for the sweep (0 = automatic).
    pub threads: usize,
    /// Collect telemetry (probes on, per-point summaries in the run
    /// record). Off by default: probes cost nothing when disabled, but
    /// recorded runs carry extra payload.
    pub telemetry: bool,
    /// Execution mode: full event-level simulation (the default), or
    /// hybrid, where provably cheap supersteps are charged closed-form
    /// under a declared per-superstep relative error bound.
    pub exec: ExecMode,
    /// Simulator inner engine: the bulk bank-epoch engine (the
    /// default) or the per-request event loop it is bit-identical to.
    pub engine: EngineKind,
    /// Kind-specific parameters, preserved in declaration order.
    pub params: Vec<(String, SpecValue)>,
    /// Free-form notes echoed under the rendered table.
    pub notes: Vec<String>,
}

impl Scenario {
    /// A minimal scenario of the given name and kind; callers fill in
    /// the rest with struct-update syntax.
    #[must_use]
    pub fn new(name: &str, kind: &str, seed: u64) -> Self {
        Scenario {
            name: name.to_string(),
            title: String::new(),
            kind: kind.to_string(),
            seed,
            n: None,
            machine: MachineSpec::preset("j90"),
            workload: WorkloadSpec::None,
            sweep: Sweep::default(),
            models: vec!["dxbsp".to_string(), "bsp".to_string()],
            backend: BackendSel::Simulator,
            threads: 0,
            telemetry: false,
            exec: ExecMode::Full,
            engine: EngineKind::default(),
            params: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Kind-specific parameter lookup.
    #[must_use]
    pub fn param(&self, key: &str) -> Option<&SpecValue> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Integer parameter with a default.
    ///
    /// # Errors
    ///
    /// [`DxError::Invalid`] if the parameter exists but is not a
    /// non-negative integer.
    pub fn param_u64(&self, key: &str, default: u64) -> Result<u64, DxError> {
        self.param(key).map_or(Ok(default), |v| req_u64(v, key))
    }

    /// String parameter with a default.
    ///
    /// # Errors
    ///
    /// [`DxError::Invalid`] if the parameter exists but is not a string.
    pub fn param_str<'a>(&'a self, key: &str, default: &'a str) -> Result<&'a str, DxError> {
        self.param(key).map_or(Ok(default), |v| req_str(v, key))
    }

    /// Set a kind-specific parameter (builder-style).
    #[must_use]
    pub fn with_param(mut self, key: &str, value: SpecValue) -> Self {
        if let Some(slot) = self.params.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.params.push((key.to_string(), value));
        }
        self
    }

    /// Validate the scenario: machine resolvable, axes well-formed,
    /// workload parameters in range, contention `k` within `n`.
    ///
    /// # Errors
    ///
    /// [`DxError::Invalid`] or [`DxError::Unknown`] describing the
    /// first problem found.
    pub fn validate(&self) -> Result<(), DxError> {
        check(!self.name.is_empty(), "scenario: `name` must be nonempty")?;
        check(!self.kind.is_empty(), "scenario: `kind` must be nonempty")?;
        self.machine.resolve()?;
        self.workload.validate()?;
        let mut seen = BTreeSetLite::new();
        for axis in &self.sweep.axes {
            check(!axis.param.is_empty(), "sweep: axis name must be nonempty")?;
            if !seen.insert(&axis.param) {
                return Err(DxError::invalid(format!("sweep: duplicate axis `{}`", axis.param)));
            }
            if axis.values.is_empty() {
                return Err(DxError::invalid(format!(
                    "sweep: axis `{}` has no values",
                    axis.param
                )));
            }
        }
        for model in &self.models {
            if !KNOWN_MODELS.contains(&model.as_str()) {
                return Err(DxError::unknown("model", model.clone()));
            }
        }
        if let Some(n) = self.n {
            check(n >= 1, "scenario: `n` must be >= 1")?;
        }
        // Contention can't exceed the element count: compare the
        // largest swept/fixed `k` against the smallest swept/fixed `n`.
        let axis_max = |name: &str| {
            self.sweep
                .axes
                .iter()
                .find(|a| a.param == name)
                .and_then(|a| a.values.iter().filter_map(AxisValue::as_u64).max())
        };
        let axis_min = |name: &str| {
            self.sweep
                .axes
                .iter()
                .find(|a| a.param == name)
                .and_then(|a| a.values.iter().filter_map(AxisValue::as_u64).min())
        };
        if matches!(
            self.workload,
            WorkloadSpec::Hotspot { .. } | WorkloadSpec::DuplicatedHotspot { .. }
        ) {
            let k_max = match axis_max("k") {
                Some(k) => Some(k),
                None => self.param("k").map(|v| req_u64(v, "k")).transpose()?,
            };
            let n_min = axis_min("n").or(self.n.map(|n| n as u64));
            if let (Some(k), Some(n)) = (k_max, n_min) {
                if k > n {
                    return Err(DxError::invalid(format!(
                        "scenario: contention k = {k} exceeds n = {n}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Encode into a [`SpecValue`] tree (the TOML/JSON document shape).
    #[must_use]
    #[allow(clippy::cast_possible_wrap)]
    pub fn to_value(&self) -> SpecValue {
        let mut t = SpecValue::table();
        t.set("name", SpecValue::Str(self.name.clone()));
        if !self.title.is_empty() {
            t.set("title", SpecValue::Str(self.title.clone()));
        }
        t.set("kind", SpecValue::Str(self.kind.clone()));
        t.set("seed", SpecValue::Int(self.seed as i64));
        if let Some(n) = self.n {
            t.set("n", SpecValue::Int(n as i64));
        }
        t.set(
            "models",
            SpecValue::List(self.models.iter().map(|m| SpecValue::Str(m.clone())).collect()),
        );
        if self.backend != BackendSel::Simulator {
            t.set("backend", SpecValue::Str(self.backend.name().to_string()));
        }
        if self.threads != 0 {
            t.set("threads", SpecValue::Int(self.threads as i64));
        }
        if self.telemetry {
            t.set("telemetry", SpecValue::Bool(true));
        }
        if let Some(bound) = self.exec.error_bound() {
            t.set("hybrid_error_bound", SpecValue::Float(bound));
        }
        if self.engine != EngineKind::default() {
            t.set("engine", SpecValue::Str(self.engine.name().to_string()));
        }
        if !self.notes.is_empty() {
            t.set(
                "notes",
                SpecValue::List(self.notes.iter().map(|s| SpecValue::Str(s.clone())).collect()),
            );
        }
        t.set("machine", self.machine.to_value());
        if self.workload != WorkloadSpec::None {
            t.set("workload", self.workload.to_value());
        }
        if !self.sweep.axes.is_empty() {
            t.set("sweep", self.sweep.to_value());
        }
        if !self.params.is_empty() {
            t.set("params", SpecValue::Table(self.params.clone()));
        }
        t
    }

    /// Decode from a [`SpecValue`] tree and validate.
    ///
    /// # Errors
    ///
    /// [`DxError::Invalid`]/[`DxError::Unknown`] for missing or
    /// malformed fields and for anything [`Scenario::validate`]
    /// rejects.
    pub fn from_value(v: &SpecValue) -> Result<Self, DxError> {
        let entries = v.as_table().ok_or_else(|| DxError::invalid("scenario: expected a table"))?;
        let str_field = |key: &str| -> Result<String, DxError> {
            v.get(key)
                .ok_or_else(|| DxError::invalid(format!("scenario: missing `{key}`")))
                .and_then(|val| req_str(val, key))
                .map(String::from)
        };
        let mut sc = Scenario::new("", "", 0);
        sc.machine = MachineSpec::default();
        sc.models.clear();
        let mut models_given = false;
        for (key, value) in entries {
            match key.as_str() {
                "name" => sc.name = str_field("name")?,
                "title" => sc.title = str_field("title")?,
                "kind" => sc.kind = str_field("kind")?,
                "seed" => sc.seed = req_u64(value, "seed")?,
                "n" => {
                    sc.n = Some(
                        usize::try_from(req_u64(value, "n")?)
                            .map_err(|_| DxError::invalid("scenario: `n` out of range"))?,
                    );
                }
                "models" => {
                    models_given = true;
                    let list = value
                        .as_list()
                        .ok_or_else(|| DxError::invalid("scenario: `models` must be a list"))?;
                    sc.models = list
                        .iter()
                        .map(|m| req_str(m, "models").map(String::from))
                        .collect::<Result<_, _>>()?;
                }
                "backend" => sc.backend = BackendSel::from_name(req_str(value, "backend")?)?,
                "threads" => {
                    sc.threads = usize::try_from(req_u64(value, "threads")?)
                        .map_err(|_| DxError::invalid("scenario: `threads` out of range"))?;
                }
                "telemetry" => {
                    sc.telemetry = value
                        .as_bool()
                        .ok_or_else(|| DxError::invalid("scenario: `telemetry` must be a bool"))?;
                }
                "hybrid_error_bound" => {
                    let bound = value.as_float().ok_or_else(|| {
                        DxError::invalid("scenario: `hybrid_error_bound` must be a number")
                    })?;
                    check(
                        (0.0..1.0).contains(&bound),
                        "scenario: `hybrid_error_bound` must be in [0, 1)",
                    )?;
                    sc.exec = ExecMode::hybrid(bound);
                }
                "engine" => {
                    let name = req_str(value, "engine")?;
                    sc.engine =
                        EngineKind::parse(name).ok_or_else(|| DxError::unknown("engine", name))?;
                }
                "notes" => {
                    let list = value
                        .as_list()
                        .ok_or_else(|| DxError::invalid("scenario: `notes` must be a list"))?;
                    sc.notes = list
                        .iter()
                        .map(|m| req_str(m, "notes").map(String::from))
                        .collect::<Result<_, _>>()?;
                }
                "machine" => sc.machine = MachineSpec::from_value(value)?,
                "workload" => sc.workload = WorkloadSpec::from_value(value)?,
                "sweep" => sc.sweep = Sweep::from_value(value)?,
                "params" => {
                    sc.params = value
                        .as_table()
                        .ok_or_else(|| DxError::invalid("scenario: `params` must be a table"))?
                        .to_vec();
                }
                other => return Err(DxError::invalid(format!("scenario: unknown key `{other}`"))),
            }
        }
        if !models_given {
            sc.models = vec!["dxbsp".to_string(), "bsp".to_string()];
        }
        sc.validate()?;
        Ok(sc)
    }

    /// Encode as a TOML document.
    #[must_use]
    pub fn to_toml(&self) -> String {
        self.to_value().to_toml()
    }

    /// Decode and validate a TOML document.
    ///
    /// # Errors
    ///
    /// [`DxError::Parse`] for syntax errors, [`DxError::Invalid`]
    /// /[`DxError::Unknown`] for semantic ones.
    pub fn from_toml(text: &str) -> Result<Self, DxError> {
        Scenario::from_value(&SpecValue::from_toml(text)?)
    }

    /// Encode as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// Decode and validate a JSON document.
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::from_toml`].
    pub fn from_json(text: &str) -> Result<Self, DxError> {
        Scenario::from_value(&SpecValue::from_json(text)?)
    }
}

fn check(cond: bool, msg: &str) -> Result<(), DxError> {
    if cond {
        Ok(())
    } else {
        Err(DxError::invalid(msg))
    }
}

fn req_str<'a>(v: &'a SpecValue, what: &str) -> Result<&'a str, DxError> {
    v.as_str().ok_or_else(|| {
        DxError::invalid(format!("`{what}`: expected a string, got {}", v.type_name()))
    })
}

fn req_u64(v: &SpecValue, what: &str) -> Result<u64, DxError> {
    v.as_int().and_then(|i| u64::try_from(i).ok()).ok_or_else(|| {
        DxError::invalid(format!(
            "`{what}`: expected a non-negative integer, got {}",
            v.type_name()
        ))
    })
}

fn req_usize(v: &SpecValue, what: &str) -> Result<usize, DxError> {
    usize::try_from(req_u64(v, what)?)
        .map_err(|_| DxError::invalid(format!("`{what}`: out of range")))
}

/// Tiny insertion-checked set over borrowed strings (avoids pulling
/// `HashSet` into a hot path that sees at most a handful of axes).
struct BTreeSetLite<'a> {
    items: Vec<&'a str>,
}

impl<'a> BTreeSetLite<'a> {
    fn new() -> Self {
        BTreeSetLite { items: Vec::new() }
    }

    fn insert(&mut self, item: &'a str) -> bool {
        if self.items.contains(&item) {
            false
        } else {
            self.items.push(item);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Scenario {
        let mut sc = Scenario::new("exp1", "scatter-sweep", 1995);
        sc.title = "Experiment 1".to_string();
        sc.n = Some(8192);
        sc.workload = WorkloadSpec::Hotspot { range: 1 << 40 };
        sc.sweep = Sweep::new(vec![Axis::ints("k", [1, 4, 16, 64, 256, 1024, 4096, 8192])]);
        sc
    }

    #[test]
    fn toml_round_trip_is_exact() {
        let sc = demo();
        let text = sc.to_toml();
        assert_eq!(Scenario::from_toml(&text).unwrap(), sc);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let sc = demo();
        assert_eq!(Scenario::from_json(&sc.to_json()).unwrap(), sc);
    }

    #[test]
    fn telemetry_flag_round_trips_and_defaults_off() {
        let mut sc = demo();
        assert!(!sc.telemetry);
        // Off is the default, so the encoding omits it entirely.
        assert!(!sc.to_toml().contains("telemetry"));
        sc.telemetry = true;
        assert!(sc.to_toml().contains("telemetry = true"));
        assert_eq!(Scenario::from_toml(&sc.to_toml()).unwrap(), sc);
        assert_eq!(Scenario::from_json(&sc.to_json()).unwrap(), sc);
    }

    #[test]
    fn hybrid_error_bound_round_trips_and_defaults_full() {
        let mut sc = demo();
        assert_eq!(sc.exec, ExecMode::Full);
        // Full is the default, so the encoding omits the key entirely.
        assert!(!sc.to_toml().contains("hybrid_error_bound"));
        sc.exec = ExecMode::hybrid(0.05);
        assert!(sc.to_toml().contains("hybrid_error_bound"));
        assert_eq!(Scenario::from_toml(&sc.to_toml()).unwrap(), sc);
        assert_eq!(Scenario::from_json(&sc.to_json()).unwrap(), sc);
    }

    #[test]
    fn hybrid_error_bound_rejects_out_of_range() {
        let mut sc = demo();
        sc.exec = ExecMode::hybrid(0.05);
        let text = sc.to_toml().replace("hybrid_error_bound = 0.05", "hybrid_error_bound = 1.5");
        assert!(text.contains("1.5"), "expected the bound key in {text}");
        let err = Scenario::from_toml(&text).unwrap_err();
        assert!(err.to_string().contains("hybrid_error_bound"), "{err}");
        let neg = sc.to_toml().replace("hybrid_error_bound = 0.05", "hybrid_error_bound = -0.1");
        assert!(Scenario::from_toml(&neg).is_err());
    }

    #[test]
    fn toml_and_json_produce_the_same_scenario() {
        let sc = demo();
        assert_eq!(
            Scenario::from_toml(&sc.to_toml()).unwrap(),
            Scenario::from_json(&sc.to_json()).unwrap()
        );
    }

    #[test]
    fn sweep_expansion_counts_multiply() {
        let sweep = Sweep::new(vec![
            Axis::ints("x", [1, 2, 4, 8]),
            Axis::ints("d", [6, 14]),
            Axis::strs("machine", ["c90", "j90", "tera"]),
        ]);
        assert_eq!(sweep.size(), 24);
        let pts = sweep.matrix();
        assert_eq!(pts.len(), 24);
        // First axis outermost: x stays put while machine cycles.
        assert_eq!(pts[0].u64("x"), Some(1));
        assert_eq!(pts[0].str("machine"), Some("c90"));
        assert_eq!(pts[1].str("machine"), Some("j90"));
        assert_eq!(pts[5].u64("x"), Some(1));
        assert_eq!(pts[6].u64("x"), Some(2));
        assert_eq!(pts[23].u64("x"), Some(8));
        assert_eq!(pts[23].u64("d"), Some(14));
        assert_eq!(pts[23].str("machine"), Some("tera"));
    }

    #[test]
    fn empty_sweep_is_one_point() {
        let sweep = Sweep::default();
        assert_eq!(sweep.size(), 1);
        assert_eq!(sweep.matrix().len(), 1);
        assert_eq!(sweep.matrix()[0].salt(), 0);
    }

    #[test]
    fn salt_matches_legacy_derivations() {
        // Single integer axis: salt is the value itself.
        let one = Sweep::new(vec![Axis::ints("k", [1, 256, 8192])]);
        let salts: Vec<u64> = one.matrix().iter().map(SweepPoint::salt).collect();
        assert_eq!(salts, vec![1, 256, 8192]);
        // Two integer axes fold base 256 (the legacy `(x << 8) | d`).
        let two = Sweep::new(vec![Axis::ints("x", [3]), Axis::ints("d", [14])]);
        assert_eq!(two.matrix()[0].salt(), (3 << 8) | 14);
        // Float axes contribute their index.
        let fl = Sweep::new(vec![Axis::floats("s", [0.0, 0.5, 1.2])]);
        let salts: Vec<u64> = fl.matrix().iter().map(SweepPoint::salt).collect();
        assert_eq!(salts, vec![0, 1, 2]);
    }

    #[test]
    fn validation_rejects_zero_expansion() {
        let mut sc = demo();
        sc.machine = MachineSpec { x: Some(0), ..MachineSpec::preset("j90") };
        let err = sc.validate().unwrap_err();
        assert!(err.is_invalid(), "{err}");
        assert!(err.to_string().contains('x'), "{err}");
    }

    #[test]
    fn validation_rejects_empty_axis() {
        let mut sc = demo();
        sc.sweep = Sweep::new(vec![Axis { param: "k".into(), values: vec![] }]);
        let err = sc.validate().unwrap_err();
        assert!(err.to_string().contains("no values"), "{err}");
    }

    #[test]
    fn validation_rejects_duplicate_axes() {
        let mut sc = demo();
        sc.sweep = Sweep::new(vec![Axis::ints("k", [1]), Axis::ints("k", [2])]);
        let err = sc.validate().unwrap_err();
        assert!(err.to_string().contains("duplicate axis"), "{err}");
    }

    #[test]
    fn validation_rejects_k_above_n() {
        let mut sc = demo();
        sc.sweep = Sweep::new(vec![Axis::ints("k", [1, 16384])]);
        let err = sc.validate().unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        // Also via the `k` param when k is not an axis.
        let mut sc = demo();
        sc.sweep = Sweep::new(vec![Axis::ints("copies", [1, 2])]);
        sc = sc.with_param("k", SpecValue::Int(100_000));
        assert!(sc.validate().is_err());
    }

    #[test]
    fn validation_rejects_unknown_preset_and_model() {
        let mut sc = demo();
        sc.machine = MachineSpec::preset("cray-3");
        assert!(matches!(sc.validate().unwrap_err(), DxError::Unknown { .. }));
        let mut sc = demo();
        sc.models = vec!["qrqw".to_string()];
        assert!(matches!(sc.validate().unwrap_err(), DxError::Unknown { .. }));
    }

    #[test]
    fn machine_overrides_apply_on_top_of_preset() {
        let spec = MachineSpec { d: Some(30), ..MachineSpec::preset("j90") };
        let m = spec.resolve().unwrap();
        assert_eq!((m.p, m.g, m.l, m.d, m.x), (8, 1, 0, 30, 32));
    }

    #[test]
    fn machine_without_preset_needs_p_d_x() {
        let spec = MachineSpec { p: Some(8), d: Some(14), ..MachineSpec::default() };
        assert!(spec.resolve().is_err());
        let spec = MachineSpec { p: Some(8), d: Some(14), x: Some(32), ..MachineSpec::default() };
        let m = spec.resolve().unwrap();
        assert_eq!((m.p, m.g, m.l, m.d, m.x), (8, 1, 0, 14, 32));
    }

    #[test]
    fn unknown_scenario_keys_are_rejected() {
        let text =
            "name = \"x\"\nkind = \"k\"\nseed = 1\nbogus = 2\n\n[machine]\npreset = \"j90\"\n";
        let err = Scenario::from_toml(text).unwrap_err();
        assert!(err.to_string().contains("unknown key `bogus`"), "{err}");
    }

    #[test]
    fn workload_field_mismatch_is_rejected() {
        let mut sc = demo();
        sc.workload = WorkloadSpec::Hotspot { range: 1 };
        assert!(sc.validate().is_err());
        let text = "name = \"x\"\nkind = \"k\"\nseed = 1\n\n[machine]\npreset = \"j90\"\n\n[workload]\nfamily = \"zipf\"\nrange = 7\n";
        let err = Scenario::from_toml(text).unwrap_err();
        assert!(err.to_string().contains("does not apply"), "{err}");
    }

    #[test]
    fn tiered_machine_round_trips_through_toml() {
        let mut sc = demo();
        sc.machine = MachineSpec {
            p: Some(8),
            x: Some(32),
            tiers: vec![DelayTierSpec::new(0, 128, 6), DelayTierSpec::new(128, 256, 14)],
            ..MachineSpec::default()
        };
        let text = sc.to_toml();
        assert!(text.contains("tiers = [{ banks = \"0..128\", d = 6 }"), "{text}");
        assert_eq!(Scenario::from_toml(&text).unwrap(), sc);
        assert_eq!(Scenario::from_json(&sc.to_json()).unwrap(), sc);
        let (m, model) = sc.machine.resolve_model().unwrap();
        assert_eq!((m.p, m.d, m.x), (8, 14, 32));
        assert_eq!(model.service(0), 6);
        assert_eq!(model.service(255), 14);
        assert!(sc.machine.has_nonuniform_delay());
    }

    #[test]
    fn per_bank_machine_round_trips_through_toml() {
        let mut sc = demo();
        sc.machine = MachineSpec {
            p: Some(2),
            x: Some(2),
            per_bank: Some(vec![6, 6, 14, 56]),
            ..MachineSpec::default()
        };
        let text = sc.to_toml();
        assert!(text.contains("per_bank = [6, 6, 14, 56]"), "{text}");
        assert_eq!(Scenario::from_toml(&text).unwrap(), sc);
        let (m, model) = sc.machine.resolve_model().unwrap();
        assert_eq!(m.d, 56);
        assert_eq!(model.service(3), 56);
    }

    #[test]
    fn mixed_preset_resolves_to_the_tiered_model() {
        let (m, model) = MachineSpec::preset("mixed").resolve_model().unwrap();
        assert_eq!((m.p, m.d, m.x), (8, 14, 32));
        assert!(model.as_uniform().is_none());
        assert_eq!(model.tiers(), vec![(6, 128), (14, 128)]);
        // Uniform presets keep uniform models.
        let (_, c90) = MachineSpec::preset("c90").resolve_model().unwrap();
        assert_eq!(c90.as_uniform(), Some(6));
        assert!(!MachineSpec::preset("c90").has_nonuniform_delay());
    }

    #[test]
    fn delay_description_conflicts_are_rejected() {
        let both = MachineSpec {
            p: Some(2),
            x: Some(2),
            d: Some(6),
            per_bank: Some(vec![6, 6, 6, 6]),
            ..MachineSpec::default()
        };
        let err = both.resolve_model().unwrap_err();
        assert!(err.to_string().contains("not both"), "{err}");
        let twice = MachineSpec {
            p: Some(2),
            x: Some(2),
            per_bank: Some(vec![6, 6, 6, 6]),
            tiers: vec![DelayTierSpec::new(0, 4, 6)],
            ..MachineSpec::default()
        };
        assert!(twice.resolve_model().is_err());
        let err = Scenario::from_toml(
            "name = \"x\"\nkind = \"k\"\nseed = 1\n\n[machine]\np = 2\nx = 2\nd = 6\ndelay = 7\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("`d` or `delay`"), "{err}");
    }

    #[test]
    fn tiers_must_tile_the_banks() {
        let gap = MachineSpec {
            p: Some(2),
            x: Some(4),
            tiers: vec![DelayTierSpec::new(0, 2, 6), DelayTierSpec::new(4, 8, 14)],
            ..MachineSpec::default()
        };
        let err = gap.resolve_model().unwrap_err();
        assert!(err.to_string().contains("contiguously"), "{err}");
        let short = MachineSpec {
            p: Some(2),
            x: Some(4),
            tiers: vec![DelayTierSpec::new(0, 4, 6)],
            ..MachineSpec::default()
        };
        let err = short.resolve_model().unwrap_err();
        assert!(err.to_string().contains("cover"), "{err}");
    }

    #[test]
    fn bad_tier_ranges_are_rejected() {
        assert_eq!(parse_bank_range("0..128").unwrap(), (0, 128));
        assert_eq!(parse_bank_range(" 128 .. 256 ").unwrap(), (128, 256));
        for bad in ["128", "8..8", "9..4", "a..b", ".."] {
            assert!(parse_bank_range(bad).is_err(), "accepted `{bad}`");
        }
        let err = Scenario::from_toml(
            "name = \"x\"\nkind = \"k\"\nseed = 1\n\n[machine]\np = 2\nx = 2\ntiers = [{ banks = \"oops\", d = 6 }]\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("start..end"), "{err}");
    }

    #[test]
    fn all_workload_families_round_trip() {
        for wl in [
            WorkloadSpec::None,
            WorkloadSpec::Uniform { range: 1 << 30 },
            WorkloadSpec::Hotspot { range: 1 << 40 },
            WorkloadSpec::DuplicatedHotspot { range: 1 << 40 },
            WorkloadSpec::Entropy { bits: 22, iterations: 8, salt: 0xE27 },
            WorkloadSpec::Zipf { universe: 64 * 1024 },
            WorkloadSpec::NasIs { bits: 20 },
            WorkloadSpec::GoldenDistinct { shift: 4 },
            WorkloadSpec::CcGraph { star_leaves: 1024, edges_per_node: 2, salt: 0xF1 },
            WorkloadSpec::GraphFamily { salt: 13 },
            WorkloadSpec::SortKeys { bits: 40 },
            WorkloadSpec::PseudoStream { kernel: "scan".into(), chunk: 4096 },
        ] {
            let mut sc = demo();
            sc.sweep = Sweep::default();
            sc.workload = wl.clone();
            let back = Scenario::from_toml(&sc.to_toml()).unwrap();
            assert_eq!(back.workload, wl);
        }
    }
}
