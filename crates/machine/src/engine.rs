//! The execution-engine layer: interchangeable [`Backend`]s behind one
//! seam, and a [`Session`] that amortizes per-run state across
//! supersteps.
//!
//! The paper's whole argument is *predicted vs. measured*: every table
//! pairs a closed-form (d,x)-BSP charge against simulated cycles. This
//! module makes that pairing a first-class operation instead of an
//! ad-hoc `Simulator` + `pattern_cost` duet re-implemented at every
//! call site. Three backends execute the same [`AccessPattern`]s:
//!
//! * [`SimulatorBackend`] — the event-driven [`Simulator`], the
//!   repository's "hardware";
//! * [`ReferenceBackend`] — the naive cycle-stepped reference machine,
//!   used to cross-check the event-driven core;
//! * [`ModelBackend`] — no machine at all: it charges the closed-form
//!   (d,x)-BSP or plain-BSP cost from `dxbsp-core`, so predictions run
//!   through the very same replay loop as measurements.
//!
//! A [`Session`] wraps a backend and owns everything that persists
//! across supersteps: the simulator's scratch state (bank queues,
//! processor streams, LRU caches, the event heap) is reused rather than
//! reallocated per run — on the paper's machines that is up to
//! `x·p = 1024` bank slots per superstep — and cumulative cycle,
//! request, and per-bank/per-processor statistics accrue across steps.
//!
//! ```
//! use dxbsp_core::{AccessPattern, CostModel, Interleaved, MachineParams};
//! use dxbsp_machine::{ModelBackend, Session, SimulatorBackend};
//!
//! let m = MachineParams::new(8, 1, 0, 14, 8);
//! let map = Interleaved::new(m.banks());
//! let pattern = AccessPattern::scatter(m.p, &vec![7u64; 64]);
//!
//! // Measured and predicted cycles through the same engine seam.
//! let mut measured = Session::new(SimulatorBackend::from_params(&m));
//! let mut predicted = Session::new(ModelBackend::new(m, CostModel::DxBsp));
//! let meas = measured.step(&pattern, &map).cycles;
//! let pred = predicted.step(&pattern, &map).cycles;
//! assert_eq!(pred, 14 * 64); // d·k: the hot bank serializes.
//! assert!(meas >= pred);
//! ```

use dxbsp_core::{
    pattern_breakdown_delayed, pattern_cost, AccessPattern, BankMap, ChargeParams, Classifier,
    CostModel, ExecMode, MachineParams, PatternPool, StepClass, Verdict,
};
use dxbsp_telemetry::{NoopProbe, Probe, StepReport};

use crate::config::SimConfig;
use crate::reference::run_reference;
use crate::sim::{Scratch, Simulator};
use crate::stats::{BankStats, ProcStats, SimResult};
use crate::stream::{StreamSummary, SuperstepSource};
use crate::trace::{Trace, TraceResult, TraceStep};

/// What one superstep cost, as reported by a [`Backend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// Cycles charged or measured for the superstep (excluding the
    /// per-barrier `sync_overhead`, which [`Session`] and [`replay`]
    /// add).
    pub cycles: u64,
    /// Number of memory requests in the superstep.
    pub requests: usize,
    /// Full simulation statistics, when the backend produces them.
    /// `None` for analytic backends like [`ModelBackend`].
    pub result: Option<SimResult>,
    /// Whether the step was charged closed-form (the hybrid fast path,
    /// or an analytic backend) rather than event-level simulated.
    pub modeled: bool,
}

impl StepOutcome {
    /// Per-bank request counts, when the backend tracked them.
    #[must_use]
    pub fn bank_requests(&self) -> Option<Vec<usize>> {
        self.result.as_ref().map(|r| r.banks.iter().map(|b| b.requests).collect())
    }

    /// A `SimResult` view of this outcome: the real one if the backend
    /// produced statistics, otherwise a skeleton carrying only cycles
    /// and the request count.
    #[must_use]
    pub fn into_result(self) -> SimResult {
        let (cycles, requests) = (self.cycles, self.requests);
        self.result.unwrap_or_else(|| SimResult {
            cycles,
            requests,
            banks: Vec::new(),
            procs: Vec::new(),
            network_wait: 0,
            events: Vec::new(),
        })
    }
}

/// An execution backend: anything that can charge or measure one
/// superstep of memory traffic.
///
/// Backends take `&mut self` so they may keep reusable working state
/// (the simulator's scratch buffers) or internal counters between
/// steps; a step's *outcome* must nonetheless be independent of prior
/// steps — replaying the same pattern twice yields identical outcomes.
pub trait Backend {
    /// A short human-readable name for reports ("simulator", "model").
    fn name(&self) -> &'static str;

    /// The machine configuration this backend executes under.
    fn config(&self) -> &SimConfig;

    /// Executes (or charges) one superstep.
    fn step(&mut self, pattern: &AccessPattern, map: &dyn BankMap) -> StepOutcome;

    /// Executes one superstep with a live [`Probe`]. Backends with
    /// internal pipeline events ([`SimulatorBackend`]) feed the probe;
    /// analytic backends have no events to report and fall back to a
    /// plain [`Backend::step`] — either way the outcome is identical
    /// to the unprobed call.
    fn step_probed<P: Probe>(
        &mut self,
        pattern: &AccessPattern,
        map: &dyn BankMap,
        _probe: &mut P,
    ) -> StepOutcome
    where
        Self: Sized,
    {
        self.step(pattern, map)
    }
}

/// The event-driven [`Simulator`] behind the [`Backend`] seam, with a
/// persistent `Scratch` so repeated steps reuse bank queues,
/// processor streams, cache storage, and the event heap instead of
/// reallocating them.
#[derive(Debug, Clone)]
pub struct SimulatorBackend {
    sim: Simulator,
    scratch: Scratch,
    classifier: Classifier,
}

impl SimulatorBackend {
    /// A backend simulating under `cfg`.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            sim: Simulator::new(cfg),
            scratch: Scratch::default(),
            classifier: Classifier::new(),
        }
    }

    /// A backend for the machine described by `m` (via
    /// [`SimConfig::from_params`]).
    #[must_use]
    pub fn from_params(m: &MachineParams) -> Self {
        Self::new(SimConfig::from_params(m))
    }

    /// The underlying simulator (e.g. for calibration routines that
    /// want `Simulator` directly).
    #[must_use]
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Swaps the configuration while keeping the scratch allocations —
    /// the cheap way to sweep many machine shapes through one backend.
    pub fn reconfigure(&mut self, cfg: SimConfig) {
        self.sim = Simulator::new(cfg);
    }

    /// One superstep under the configured [`ExecMode`]. In hybrid mode
    /// on an eligible machine the classifier prices the prepared step
    /// first; the event loop runs only when the verdict demands it,
    /// and either way the step reuses the same prepared scratch.
    fn step_impl<P: Probe>(
        &mut self,
        pattern: &AccessPattern,
        map: &dyn BankMap,
        probe: &mut P,
    ) -> StepOutcome {
        // Only the hybrid branch needs a config clone (the borrow on
        // `self.sim` conflicts with `&mut self.scratch` below); the
        // full-simulation path stays clone-free per step.
        if self.sim.config().hybrid_eligible() {
            let cfg = self.sim.config().clone();
            let ExecMode::Hybrid { error_bound_ppm } = cfg.exec else {
                unreachable!("hybrid_eligible implies hybrid mode");
            };
            self.sim.prepare(&mut self.scratch, pattern, map);
            let shape = self.classifier.analyze(pattern, self.scratch.bank_indices(), cfg.banks);
            let verdict = shape.charge(&ChargeParams::new(
                cfg.issue_gap,
                &cfg.delay,
                cfg.latency,
                error_bound_ppm,
            ));
            if verdict.is_analytic() {
                let res = synthesize(&cfg, &self.classifier, &verdict);
                return StepOutcome {
                    cycles: res.cycles,
                    requests: res.requests,
                    result: Some(res),
                    modeled: true,
                };
            }
            let res = self.sim.run_prepared(&mut self.scratch, pattern, probe);
            return StepOutcome {
                cycles: res.cycles,
                requests: res.requests,
                result: Some(res),
                modeled: false,
            };
        }
        let res = self.sim.run_reusing_probed(&mut self.scratch, pattern, map, probe);
        StepOutcome {
            cycles: res.cycles,
            requests: res.requests,
            result: Some(res),
            modeled: false,
        }
    }
}

/// The `SimResult` an analytically charged superstep would have
/// produced, rebuilt from the classifier's load counts. Exact for the
/// exact classes ([`StepClass::Empty`], [`StepClass::ConflictFree`],
/// [`StepClass::HotBank`]); for [`StepClass::Bounded`] the per-bank
/// request and busy-cycle counters are still exact but queue waits are
/// reported as zero and every active processor's `done_at` is the
/// charged time — the bracket prices the step without attributing
/// waiting to individual requests.
fn synthesize(cfg: &SimConfig, cl: &Classifier, v: &Verdict) -> SimResult {
    let g = cfg.issue_gap;
    let round_trip = 2 * cfg.latency;
    let mut banks = vec![BankStats::default(); cfg.banks];
    let mut procs = vec![ProcStats::default(); cfg.procs];
    let loads = cl.proc_loads();
    let n: u64 = loads.iter().map(|&k| u64::from(k)).sum();
    let h: u64 = loads.iter().copied().max().unwrap_or(0).into();
    for (bank, load) in cl.touched_banks() {
        banks[bank].requests = load as usize;
        banks[bank].busy_cycles = u64::from(load) * cfg.delay.service(bank);
    }
    for (st, &k) in procs.iter_mut().zip(loads) {
        st.issued = k as usize;
    }
    match v.class {
        StepClass::Empty => {}
        StepClass::ConflictFree => {
            // Nothing queues: every request spends exactly one transit
            // leg, `d` cycles of service, and one leg back. The
            // classifier only produces this class under a uniform
            // model (per-request bank identity is gone by now).
            let d = cfg.delay.as_uniform().expect("conflict-free class is uniform-only");
            for (st, &k) in procs.iter_mut().zip(loads) {
                if k > 0 {
                    st.done_at = (u64::from(k) - 1) * g + d + round_trip;
                }
            }
        }
        StepClass::HotBank => {
            let hot = cl.shape().single_bank.expect("hot-bank step has its bank") as usize;
            let d = cfg.delay.service(hot);
            // The bank serves back to back in (issue time, processor)
            // order: the j-th served request starts at `lat + (j−1)·d`
            // after arriving at `issue + lat`, so total waiting is
            // `d·n(n−1)/2` minus the sum of all issue offsets, and the
            // longest wait belongs to the last-served request.
            let issue_sum: u64 = loads
                .iter()
                .map(|&k| {
                    // Triangular sum of issue slots 0..k; zero for
                    // processors that issued nothing.
                    let k = u64::from(k);
                    k * k.saturating_sub(1) / 2
                })
                .sum();
            banks[hot].queue_wait = d * (n * (n - 1) / 2) - g * issue_sum;
            banks[hot].max_queue_wait = (n - 1) * d - (h - 1) * g;
            for (p, &kp) in loads.iter().enumerate() {
                if kp == 0 {
                    continue;
                }
                let kp = u64::from(kp);
                // Service position of processor p's last request, issued
                // at `(k_p−1)·g`: requests from q ≤ p at slots `< k_p`
                // precede it, requests from q > p only at slots
                // `< k_p − 1` (equal slots order by processor index).
                // With g = 0 every slot collides and the queue drains
                // whole processors in index order instead.
                let pos: u64 = if g == 0 {
                    loads[..=p].iter().map(|&kq| u64::from(kq)).sum()
                } else {
                    loads
                        .iter()
                        .enumerate()
                        .map(|(q, &kq)| u64::from(kq).min(if q <= p { kp } else { kp - 1 }))
                        .sum()
                };
                procs[p].done_at = pos * d + round_trip;
            }
        }
        StepClass::Bounded => {
            for (st, &k) in procs.iter_mut().zip(loads) {
                if k > 0 {
                    st.done_at = v.cycles;
                }
            }
        }
        StepClass::Simulate => unreachable!("refused steps run the event loop"),
    }
    SimResult {
        cycles: v.cycles,
        requests: n as usize,
        banks,
        procs,
        network_wait: 0,
        events: Vec::new(),
    }
}

impl Backend for SimulatorBackend {
    fn name(&self) -> &'static str {
        "simulator"
    }

    fn config(&self) -> &SimConfig {
        self.sim.config()
    }

    fn step(&mut self, pattern: &AccessPattern, map: &dyn BankMap) -> StepOutcome {
        self.step_impl(pattern, map, &mut NoopProbe)
    }

    fn step_probed<P: Probe>(
        &mut self,
        pattern: &AccessPattern,
        map: &dyn BankMap,
        probe: &mut P,
    ) -> StepOutcome {
        self.step_impl(pattern, map, probe)
    }
}

/// The naive cycle-stepped reference machine behind the [`Backend`]
/// seam. Orders of magnitude slower than [`SimulatorBackend`] but
/// obviously correct — the differential tests run the two against each
/// other.
#[derive(Debug, Clone)]
pub struct ReferenceBackend {
    cfg: SimConfig,
}

impl ReferenceBackend {
    /// A reference backend under `cfg`.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg }
    }
}

impl Backend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn config(&self) -> &SimConfig {
        &self.cfg
    }

    fn step(&mut self, pattern: &AccessPattern, map: &dyn BankMap) -> StepOutcome {
        let res = run_reference(&self.cfg, pattern, &map);
        let requests: usize = res.bank_requests.iter().sum();
        let banks: Vec<BankStats> = res
            .bank_requests
            .iter()
            .map(|&r| BankStats { requests: r, ..BankStats::default() })
            .collect();
        StepOutcome {
            cycles: res.cycles,
            requests,
            result: Some(SimResult {
                cycles: res.cycles,
                requests,
                banks,
                procs: Vec::new(),
                network_wait: 0,
                events: Vec::new(),
            }),
            modeled: false,
        }
    }
}

/// The closed-form cost model behind the [`Backend`] seam: no machine
/// is simulated; each step charges the (d,x)-BSP (or plain-BSP)
/// superstep cost `max(L, g·h, d·R)` from `dxbsp-core`. The third
/// "machine" of the repository — predictions flow through the same
/// replay loop as measurements.
#[derive(Debug, Clone)]
pub struct ModelBackend {
    machine: MachineParams,
    model: CostModel,
    cfg: SimConfig,
}

impl ModelBackend {
    /// A model backend charging `model` costs on machine `m`. The
    /// derived [`SimConfig`] carries `sync_overhead = L`, so replaying
    /// a trace charges one `L` per superstep exactly as
    /// `charge_trace` always did.
    #[must_use]
    pub fn new(m: MachineParams, model: CostModel) -> Self {
        Self { machine: m, model, cfg: SimConfig::from_params(&m) }
    }

    /// The machine parameters being charged.
    #[must_use]
    pub fn machine(&self) -> &MachineParams {
        &self.machine
    }

    /// The cost model in force.
    #[must_use]
    pub fn model(&self) -> CostModel {
        self.model
    }
}

impl Backend for ModelBackend {
    fn name(&self) -> &'static str {
        match self.model {
            CostModel::DxBsp => "dxbsp-model",
            CostModel::Bsp => "bsp-model",
        }
    }

    fn config(&self) -> &SimConfig {
        &self.cfg
    }

    fn step(&mut self, pattern: &AccessPattern, map: &dyn BankMap) -> StepOutcome {
        let cycles = pattern_cost(&self.machine, pattern, &map, self.model);
        StepOutcome { cycles, requests: pattern.len(), result: None, modeled: true }
    }
}

/// Replays a trace through any backend, charging one `sync_overhead`
/// per superstep barrier — the generic engine behind both
/// `run_trace` (simulator backend) and `charge_trace` (model backend).
#[must_use]
pub fn replay<B: Backend>(backend: &mut B, trace: &Trace, map: &dyn BankMap) -> TraceResult {
    let sync = backend.config().sync_overhead;
    let mut steps = Vec::with_capacity(trace.len());
    let mut labels = Vec::with_capacity(trace.len());
    let mut total = 0u64;
    let mut requests = 0usize;
    for step in trace {
        let out = backend.step(&step.pattern, map);
        total += out.cycles + step.local_work + sync;
        requests += out.requests;
        labels.push(step.label.clone());
        steps.push(out.into_result());
    }
    TraceResult { total_cycles: total, total_requests: requests, steps, labels }
}

/// A long-lived execution context: one backend plus cumulative
/// statistics across every superstep stepped through it.
///
/// Consumers that execute many supersteps — the scan-vector VM, the
/// PRAM emulator, sweep-style experiments — hold a `Session` instead of
/// a raw `Simulator`. The backend's working state (bank queues,
/// processor state, cache storage) is reused between steps, and the
/// session accrues total cycles (including per-barrier sync overhead),
/// requests, and merged per-bank/per-processor statistics.
#[derive(Debug, Clone)]
pub struct Session<B: Backend> {
    backend: B,
    cycles: u64,
    memory_cycles: u64,
    requests: usize,
    supersteps: usize,
    simulated_steps: usize,
    modeled_steps: usize,
    peak_step_requests: usize,
    bank_totals: Vec<BankStats>,
    proc_totals: Vec<ProcStats>,
    pool: PatternPool,
}

impl<B: Backend> Session<B> {
    /// Wraps `backend` in a fresh session.
    #[must_use]
    pub fn new(backend: B) -> Self {
        Self {
            backend,
            cycles: 0,
            memory_cycles: 0,
            requests: 0,
            supersteps: 0,
            simulated_steps: 0,
            modeled_steps: 0,
            peak_step_requests: 0,
            bank_totals: Vec::new(),
            proc_totals: Vec::new(),
            pool: PatternPool::new(),
        }
    }

    /// The session's pattern-buffer pool. Consumers that build patterns
    /// superstep by superstep (the scan-vector VM, the PRAM emulator)
    /// draw their buffers here so steady-state allocation is zero.
    #[must_use]
    pub fn pool(&self) -> &PatternPool {
        &self.pool
    }

    /// The wrapped backend.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the wrapped backend (e.g. to reconfigure a
    /// [`SimulatorBackend`] mid-sweep).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The backend's configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        self.backend.config()
    }

    /// Unwraps the session, returning the backend.
    #[must_use]
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Total cycles across all steps, each charged as
    /// `step cycles + local work + sync_overhead`.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles attributable to memory alone (no local work, no sync).
    #[must_use]
    pub fn memory_cycles(&self) -> u64 {
        self.memory_cycles
    }

    /// Total memory requests stepped through the session.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// Number of supersteps executed.
    #[must_use]
    pub fn supersteps(&self) -> usize {
        self.supersteps
    }

    /// Supersteps that ran through event-level simulation (all of
    /// them, for a [`SimulatorBackend`] in [`ExecMode::Full`]).
    #[must_use]
    pub fn simulated_steps(&self) -> usize {
        self.simulated_steps
    }

    /// Supersteps charged closed-form: the hybrid fast path, plus every
    /// step of an analytic backend like [`ModelBackend`].
    #[must_use]
    pub fn modeled_steps(&self) -> usize {
        self.modeled_steps
    }

    /// The largest single-superstep request count stepped through the
    /// session — the streaming peak-resident watermark. A streamed run
    /// ([`Session::run_stream`] or a push-side
    /// [`SessionSink`](crate::stream::SessionSink)) holds exactly one
    /// superstep's requests in memory at a time, so this is its peak
    /// resident footprint in requests, independent of stream length.
    #[must_use]
    pub fn peak_step_requests(&self) -> usize {
        self.peak_step_requests
    }

    /// Per-bank statistics summed across all steps (empty for analytic
    /// backends). `max_queue_wait` is the max over steps.
    #[must_use]
    pub fn bank_totals(&self) -> &[BankStats] {
        &self.bank_totals
    }

    /// Per-processor statistics summed across all steps (`done_at` is
    /// the max over steps).
    #[must_use]
    pub fn proc_totals(&self) -> &[ProcStats] {
        &self.proc_totals
    }

    /// Resets the cumulative counters without touching the backend's
    /// reusable working state.
    pub fn reset_totals(&mut self) {
        self.cycles = 0;
        self.memory_cycles = 0;
        self.requests = 0;
        self.supersteps = 0;
        self.simulated_steps = 0;
        self.modeled_steps = 0;
        self.peak_step_requests = 0;
        self.bank_totals.clear();
        self.proc_totals.clear();
    }

    /// Executes one pure-memory superstep (no local work).
    pub fn step(&mut self, pattern: &AccessPattern, map: &dyn BankMap) -> StepOutcome {
        self.step_with_local(pattern, map, 0)
    }

    /// Executes one superstep and charges `local_work` cycles of local
    /// computation alongside the memory time and the per-barrier
    /// `sync_overhead`.
    pub fn step_with_local(
        &mut self,
        pattern: &AccessPattern,
        map: &dyn BankMap,
        local_work: u64,
    ) -> StepOutcome {
        self.step_inner(pattern, map, local_work, "", &mut NoopProbe)
    }

    /// [`Session::step`] with a live [`Probe`]: the backend feeds the
    /// probe its pipeline events, and the session closes the superstep
    /// with a [`StepReport`] carrying the closed-form
    /// `max(L, g·h, d·R)` attribution for `pattern`. The per-report
    /// `total_cycles` sum to exactly [`Session::cycles`], so a probed
    /// run attributes every simulated cycle to one superstep.
    pub fn step_probed<P: Probe>(
        &mut self,
        pattern: &AccessPattern,
        map: &dyn BankMap,
        probe: &mut P,
    ) -> StepOutcome {
        self.step_inner(pattern, map, 0, "", probe)
    }

    /// [`Session::step_with_local`] with a live [`Probe`].
    pub fn step_with_local_probed<P: Probe>(
        &mut self,
        pattern: &AccessPattern,
        map: &dyn BankMap,
        local_work: u64,
        probe: &mut P,
    ) -> StepOutcome {
        self.step_inner(pattern, map, local_work, "", probe)
    }

    pub(crate) fn step_inner<P: Probe>(
        &mut self,
        pattern: &AccessPattern,
        map: &dyn BankMap,
        local_work: u64,
        label: &str,
        probe: &mut P,
    ) -> StepOutcome {
        if P::ENABLED {
            probe.superstep_begin(self.supersteps, pattern.len());
        }
        let out = self.backend.step_probed(pattern, map, probe);
        let sync = self.backend.config().sync_overhead;
        self.supersteps += 1;
        if out.modeled {
            self.modeled_steps += 1;
        } else {
            self.simulated_steps += 1;
        }
        self.requests += out.requests;
        self.peak_step_requests = self.peak_step_requests.max(out.requests);
        self.memory_cycles += out.cycles;
        self.cycles += out.cycles + local_work + sync;
        if let Some(res) = &out.result {
            if self.bank_totals.len() < res.banks.len() {
                self.bank_totals.resize(res.banks.len(), BankStats::default());
            }
            for (tot, b) in self.bank_totals.iter_mut().zip(&res.banks) {
                tot.merge(b);
            }
            if self.proc_totals.len() < res.procs.len() {
                self.proc_totals.resize(res.procs.len(), ProcStats::default());
            }
            for (tot, p) in self.proc_totals.iter_mut().zip(&res.procs) {
                tot.merge(p);
            }
        }
        if P::ENABLED {
            let cfg = self.backend.config();
            let model = pattern_breakdown_delayed(&cfg.params(), &cfg.delay, pattern, &map);
            probe.superstep_end(
                label,
                &StepReport {
                    index: self.supersteps - 1,
                    requests: out.requests,
                    memory_cycles: out.cycles,
                    local_work,
                    sync_overhead: sync,
                    total_cycles: out.cycles + local_work + sync,
                    modeled: out.modeled,
                    model,
                },
            );
        }
        out
    }

    /// Pulls supersteps from `source` one at a time and executes each
    /// the moment it arrives — the streaming counterpart of
    /// [`run_trace`](Session::run_trace). Only one [`TraceStep`] buffer
    /// (drawn from the session's [`PatternPool`]) is resident at any
    /// instant, so peak memory is O(one superstep) regardless of how
    /// long the stream runs. Totals accrue into the session exactly as
    /// stepping each pattern by hand would; the returned
    /// [`StreamSummary`] is this call's delta.
    pub fn run_stream<S: SuperstepSource + ?Sized>(
        &mut self,
        source: &mut S,
        map: &dyn BankMap,
    ) -> StreamSummary {
        self.run_stream_probed(source, map, &mut NoopProbe)
    }

    /// [`Session::run_stream`] with a live [`Probe`]: every superstep's
    /// pipeline events and cost attribution (labelled with the trace
    /// step's label) flow into `probe` as the stream executes.
    pub fn run_stream_probed<S: SuperstepSource + ?Sized, P: Probe>(
        &mut self,
        source: &mut S,
        map: &dyn BankMap,
        probe: &mut P,
    ) -> StreamSummary {
        let (cycles0, mem0) = (self.cycles, self.memory_cycles);
        let (req0, steps0) = (self.requests, self.supersteps);
        let mut step = TraceStep::new(self.pool.acquire(1));
        while source.fill_next(&mut step) {
            self.step_inner(&step.pattern, map, step.local_work, &step.label, probe);
        }
        self.pool.release(step.pattern);
        StreamSummary {
            supersteps: self.supersteps - steps0,
            requests: self.requests - req0,
            cycles: self.cycles - cycles0,
            memory_cycles: self.memory_cycles - mem0,
        }
    }

    /// Replays a whole trace through the session, accumulating into the
    /// session totals and returning the per-trace result.
    pub fn run_trace(&mut self, trace: &Trace, map: &dyn BankMap) -> TraceResult {
        let mut steps = Vec::with_capacity(trace.len());
        let mut labels = Vec::with_capacity(trace.len());
        let mut total = 0u64;
        let mut requests = 0usize;
        for step in trace {
            let out = self.step_with_local(&step.pattern, map, step.local_work);
            total += out.cycles + step.local_work + self.backend.config().sync_overhead;
            requests += out.requests;
            labels.push(step.label.clone());
            steps.push(out.into_result());
        }
        TraceResult { total_cycles: total, total_requests: requests, steps, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceStep;
    use dxbsp_core::Interleaved;

    fn hot(procs: usize, n: usize) -> AccessPattern {
        AccessPattern::scatter(procs, &vec![0u64; n])
    }

    #[test]
    fn simulator_backend_matches_simulator_run() {
        let cfg = SimConfig::new(8, 64, 14).with_latency(7).with_window(4);
        let map = Interleaved::new(64);
        let mut pat = AccessPattern::new(8);
        for i in 0..200u64 {
            pat.push(dxbsp_core::Request::write((i % 8) as usize, i * 31 % 97));
        }
        let mut backend = SimulatorBackend::new(cfg.clone());
        let direct = Simulator::new(cfg).run(&pat, &map);
        // Repeated steps through one backend reproduce independent runs
        // bit for bit.
        for _ in 0..3 {
            let out = backend.step(&pat, &map);
            assert_eq!(out.result.as_ref(), Some(&direct));
            assert_eq!(out.cycles, direct.cycles);
        }
    }

    #[test]
    fn model_backend_charges_closed_form() {
        let m = MachineParams::new(8, 1, 0, 14, 8);
        let map = Interleaved::new(64);
        let pat = hot(8, 64);
        let mut dx = ModelBackend::new(m, CostModel::DxBsp);
        let mut bsp = ModelBackend::new(m, CostModel::Bsp);
        // 64 requests to one bank: d·R dominates for the (d,x)-BSP; the
        // plain BSP only sees the per-processor load of 8.
        assert_eq!(dx.step(&pat, &map).cycles, 14 * 64);
        assert_eq!(bsp.step(&pat, &map).cycles, 8);
        assert!(dx.step(&pat, &map).result.is_none());
    }

    #[test]
    fn reference_backend_reports_bank_requests() {
        let cfg = SimConfig::new(2, 8, 6);
        let map = Interleaved::new(8);
        let pat = AccessPattern::scatter(2, &[0u64, 1, 2, 0]);
        let mut backend = ReferenceBackend::new(cfg);
        let out = backend.step(&pat, &map);
        assert_eq!(out.requests, 4);
        assert_eq!(out.bank_requests().unwrap()[0], 2);
    }

    #[test]
    fn backends_agree_on_contended_scatter() {
        let cfg = SimConfig::new(4, 16, 5).with_latency(3);
        let map = Interleaved::new(16);
        let mut pat = AccessPattern::new(4);
        for i in 0..80u64 {
            pat.push(dxbsp_core::Request::write((i % 4) as usize, i * 7 % 23));
        }
        let mut fast = SimulatorBackend::new(cfg.clone());
        let mut slow = ReferenceBackend::new(cfg);
        let a = fast.step(&pat, &map);
        let b = slow.step(&pat, &map);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.bank_requests(), b.bank_requests());
    }

    #[test]
    fn session_accumulates_across_supersteps() {
        let cfg = SimConfig::new(1, 4, 6).with_sync_overhead(100);
        let map = Interleaved::new(4);
        let mut session = Session::new(SimulatorBackend::new(cfg));
        session.step_with_local(&hot(1, 1), &map, 50);
        session.step(&hot(1, 2), &map);
        // Step 1: 6 memory + 50 local + 100 sync; step 2: 12 + 100.
        assert_eq!(session.cycles(), 6 + 50 + 100 + 12 + 100);
        assert_eq!(session.memory_cycles(), 18);
        assert_eq!(session.requests(), 3);
        assert_eq!(session.supersteps(), 2);
        assert_eq!(session.bank_totals()[0].requests, 3);
        assert_eq!(session.proc_totals()[0].issued, 3);
        session.reset_totals();
        assert_eq!(session.cycles(), 0);
        assert_eq!(session.supersteps(), 0);
    }

    #[test]
    fn session_run_trace_matches_replay() {
        let cfg = SimConfig::new(1, 4, 6).with_sync_overhead(9);
        let map = Interleaved::new(4);
        let trace = vec![
            TraceStep::new(hot(1, 3)).with_local_work(5).labeled("a"),
            TraceStep::new(hot(1, 1)).labeled("b"),
        ];
        let mut session = Session::new(SimulatorBackend::new(cfg.clone()));
        let via_session = session.run_trace(&trace, &map);
        let via_replay = replay(&mut SimulatorBackend::new(cfg), &trace, &map);
        assert_eq!(via_session, via_replay);
        assert_eq!(session.cycles(), via_replay.total_cycles);
        assert_eq!(session.supersteps(), 2);
    }

    #[test]
    fn replay_through_model_backend_charges_l_per_step() {
        let m = MachineParams::new(1, 1, 7, 6, 4);
        let map = Interleaved::new(4);
        let trace = vec![
            TraceStep::new(hot(1, 5)).with_local_work(3),
            TraceStep::new(AccessPattern::scatter(1, &[1, 2, 3])),
        ];
        let mut model = ModelBackend::new(m, CostModel::DxBsp);
        let res = replay(&mut model, &trace, &map);
        // Identical to the historical charge_trace sum: 30+3+7, then
        // max(7, 3, 6) = 7 plus 7.
        assert_eq!(res.total_cycles, 30 + 3 + 7 + 7 + 7);
        assert_eq!(res.total_requests, 8);
        assert!(res.steps.iter().all(|s| s.banks.is_empty()));
    }

    #[test]
    fn reconfigure_keeps_scratch_but_changes_machine() {
        let map_a = Interleaved::new(64);
        let map_b = Interleaved::new(16);
        let mut backend = SimulatorBackend::new(SimConfig::new(8, 64, 14));
        let first = backend.step(&hot(8, 32), &map_a);
        assert_eq!(first.cycles, 14 * 32);
        backend.reconfigure(SimConfig::new(4, 16, 6));
        let second = backend.step(&hot(4, 32), &map_b);
        assert_eq!(second.cycles, 6 * 32);
        assert_eq!(second.result.unwrap().banks.len(), 16);
    }

    #[test]
    fn hybrid_conflict_free_step_is_bit_identical_to_simulation() {
        let cfg = SimConfig::new(4, 16, 14).with_latency(3).with_exec(ExecMode::hybrid(0.0));
        let map = Interleaved::new(16);
        let keys: Vec<u64> = (0..16).collect();
        let pat = AccessPattern::scatter(4, &keys);
        let a = SimulatorBackend::new(cfg.clone()).step(&pat, &map);
        let b = SimulatorBackend::new(cfg.with_exec(ExecMode::Full)).step(&pat, &map);
        assert!(a.modeled, "conflict-free step must take the fast path");
        assert!(!b.modeled);
        assert_eq!(a.result, b.result, "synthesized stats must match the event loop exactly");
    }

    #[test]
    fn hybrid_hot_bank_gather_is_bit_identical_to_simulation() {
        // 33 reads of one location over 8 processors: uneven loads
        // (5,4,…,4) exercise the service-position closed form.
        let cfg = SimConfig::new(8, 64, 6)
            .with_issue_gap(2)
            .with_latency(10)
            .with_exec(ExecMode::hybrid(0.0));
        let map = Interleaved::new(64);
        let pat = AccessPattern::gather(8, &vec![7u64; 33]);
        let a = SimulatorBackend::new(cfg.clone()).step(&pat, &map);
        let b = SimulatorBackend::new(cfg.with_exec(ExecMode::Full)).step(&pat, &map);
        assert!(a.modeled);
        assert_eq!(a.cycles, 33 * 6 + 20);
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn hybrid_refuses_hot_write_conflicts() {
        let cfg = SimConfig::new(8, 64, 6).with_exec(ExecMode::hybrid(0.99));
        let map = Interleaved::new(64);
        let writes = AccessPattern::scatter(8, &vec![7u64; 32]);
        let out = SimulatorBackend::new(cfg.clone()).step(&writes, &map);
        assert!(!out.modeled, "hot-location writes must run the event loop");
        let full = SimulatorBackend::new(cfg.with_exec(ExecMode::Full)).step(&writes, &map);
        assert_eq!(out.result, full.result);
    }

    #[test]
    fn hybrid_bounded_charge_stays_within_declared_bound() {
        // 2 procs × 8 requests over two banks: LB 160, UB 167 at
        // g=1, d=20 — accepted at 5%, and the simulated time must land
        // in the bracket.
        let keys: Vec<u64> = (0..16).map(|i| u64::from(i % 2 == 0)).collect();
        let pat = AccessPattern::scatter(2, &keys);
        let map = Interleaved::new(4);
        let cfg = SimConfig::new(2, 4, 20).with_exec(ExecMode::hybrid(0.05));
        let hybrid = SimulatorBackend::new(cfg.clone()).step(&pat, &map);
        let full = SimulatorBackend::new(cfg.with_exec(ExecMode::Full)).step(&pat, &map);
        assert!(hybrid.modeled);
        assert_eq!(hybrid.cycles, 160);
        assert!(full.cycles >= 160 && full.cycles <= 167);
        let err = (full.cycles - hybrid.cycles) as f64 / full.cycles as f64;
        assert!(err <= 0.05, "realized error {err} exceeds the declared bound");
        // The pricing counters stay exact even when timing is bracketed.
        let (hr, fr) = (hybrid.result.unwrap(), full.result.unwrap());
        for (h, f) in hr.banks.iter().zip(&fr.banks) {
            assert_eq!(h.requests, f.requests);
            assert_eq!(h.busy_cycles, f.busy_cycles);
        }
    }

    #[test]
    fn hybrid_ineligible_features_force_full_simulation() {
        let cfg = SimConfig::new(4, 16, 6).with_window(2).with_exec(ExecMode::hybrid(0.99));
        assert!(!cfg.hybrid_eligible());
        let map = Interleaved::new(16);
        let pat = AccessPattern::scatter(4, &(0..16).collect::<Vec<u64>>());
        let out = SimulatorBackend::new(cfg).step(&pat, &map);
        assert!(!out.modeled, "a bounded window is outside the closed forms");
    }

    #[test]
    fn session_counts_modeled_and_simulated_steps() {
        let cfg = SimConfig::new(8, 64, 6).with_exec(ExecMode::hybrid(0.0));
        let map = Interleaved::new(64);
        let mut session = Session::new(SimulatorBackend::new(cfg));
        session.step(&AccessPattern::scatter(8, &(0..32).collect::<Vec<u64>>()), &map);
        session.step(&AccessPattern::scatter(8, &vec![7u64; 32]), &map);
        assert_eq!(session.supersteps(), 2);
        assert_eq!(session.modeled_steps(), 1);
        assert_eq!(session.simulated_steps(), 1);
        session.reset_totals();
        assert_eq!(session.modeled_steps(), 0);
        assert_eq!(session.simulated_steps(), 0);
    }

    #[test]
    fn session_tracks_the_peak_step_watermark() {
        let cfg = SimConfig::new(2, 8, 6);
        let map = Interleaved::new(8);
        let mut session = Session::new(SimulatorBackend::new(cfg));
        assert_eq!(session.peak_step_requests(), 0);
        session.step(&hot(2, 3), &map);
        session.step(&hot(2, 7), &map);
        session.step(&hot(2, 1), &map);
        // The watermark is the max over steps, not the total.
        assert_eq!(session.peak_step_requests(), 7);
        assert_eq!(session.requests(), 11);
        session.reset_totals();
        assert_eq!(session.peak_step_requests(), 0);
    }

    #[test]
    fn backend_names_are_distinct() {
        let m = MachineParams::new(2, 1, 0, 6, 4);
        let cfg = SimConfig::from_params(&m);
        assert_eq!(SimulatorBackend::new(cfg.clone()).name(), "simulator");
        assert_eq!(ReferenceBackend::new(cfg).name(), "reference");
        assert_eq!(ModelBackend::new(m, CostModel::DxBsp).name(), "dxbsp-model");
        assert_eq!(ModelBackend::new(m, CostModel::Bsp).name(), "bsp-model");
    }
}
