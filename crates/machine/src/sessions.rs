//! `SessionPool` — warm [`SimulatorBackend`] sessions, checked out
//! and in.
//!
//! A `SimulatorBackend` is cheap to *step* but carries warm state that
//! is expensive to rebuild: bank queues, processor streams, the event
//! wheel, the classifier's scratch. The `session_reuse` benches pin
//! reuse at >2× a cold build per sweep point — a win that used to be
//! trapped inside one sweep's `parallel_map_with` worker loop. The
//! pool hoists it to process scope: any number of sweeps, profiles,
//! replays or server requests share one set of warm sessions.
//!
//! Checkout hands back a [`PooledBackend`] guard that dereferences to
//! the backend and returns it to the pool on drop. A recycled backend
//! is [`reconfigured`](SimulatorBackend::reconfigure) when the
//! requested [`SimConfig`] differs from what it last ran — keeping the
//! scratch allocations either way. Determinism is unaffected: a
//! backend's results depend only on its configuration and inputs (the
//! `--threads 1/N` byte-identity tests pin this through the pool).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::config::SimConfig;
use crate::engine::SimulatorBackend;

/// A pool of idle, warm simulator sessions.
#[derive(Debug)]
pub struct SessionPool {
    idle: Mutex<Vec<SimulatorBackend>>,
    /// Idle sessions retained beyond this are dropped at check-in.
    max_idle: usize,
    in_use: AtomicUsize,
    checkouts: AtomicU64,
    reuses: AtomicU64,
}

/// A point-in-time snapshot of pool occupancy and traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Warm sessions waiting in the pool.
    pub idle: usize,
    /// Sessions currently checked out.
    pub in_use: usize,
    /// Total checkouts served.
    pub checkouts: u64,
    /// Checkouts served by recycling a warm session (the rest built
    /// fresh backends).
    pub reuses: u64,
}

impl SessionPool {
    /// An empty pool retaining at most `max_idle` warm sessions.
    #[must_use]
    pub fn new(max_idle: usize) -> Self {
        SessionPool {
            idle: Mutex::new(Vec::new()),
            max_idle,
            in_use: AtomicUsize::new(0),
            checkouts: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        }
    }

    /// The process-wide pool shared by sweeps, profiling, replay and
    /// the execution service.
    #[must_use]
    pub fn global() -> &'static SessionPool {
        static GLOBAL: OnceLock<SessionPool> = OnceLock::new();
        GLOBAL.get_or_init(|| SessionPool::new(64))
    }

    /// Check out a session configured as `cfg`: a recycled warm
    /// backend when one is idle (reconfigured only if its config
    /// differs), a fresh one otherwise. The guard checks the session
    /// back in on drop.
    pub fn checkout(&self, cfg: SimConfig) -> PooledBackend<'_> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let recycled = self.idle.lock().expect("session pool poisoned").pop();
        let backend = match recycled {
            Some(mut b) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                if *b.simulator().config() != cfg {
                    b.reconfigure(cfg);
                }
                b
            }
            None => SimulatorBackend::new(cfg),
        };
        self.in_use.fetch_add(1, Ordering::Relaxed);
        PooledBackend { backend: Some(backend), pool: self }
    }

    fn checkin(&self, backend: SimulatorBackend) {
        self.in_use.fetch_sub(1, Ordering::Relaxed);
        let mut idle = self.idle.lock().expect("session pool poisoned");
        if idle.len() < self.max_idle {
            idle.push(backend);
        }
    }

    /// Current occupancy and lifetime traffic counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            idle: self.idle.lock().expect("session pool poisoned").len(),
            in_use: self.in_use.load(Ordering::Relaxed),
            checkouts: self.checkouts.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
        }
    }
}

/// A checked-out session; dereferences to the [`SimulatorBackend`] and
/// returns it to its pool when dropped.
#[derive(Debug)]
pub struct PooledBackend<'p> {
    backend: Option<SimulatorBackend>,
    pool: &'p SessionPool,
}

impl std::ops::Deref for PooledBackend<'_> {
    type Target = SimulatorBackend;
    fn deref(&self) -> &SimulatorBackend {
        self.backend.as_ref().expect("backend present until drop")
    }
}

impl std::ops::DerefMut for PooledBackend<'_> {
    fn deref_mut(&mut self) -> &mut SimulatorBackend {
        self.backend.as_mut().expect("backend present until drop")
    }
}

impl Drop for PooledBackend<'_> {
    fn drop(&mut self) {
        if let Some(backend) = self.backend.take() {
            self.pool.checkin(backend);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Backend;
    use dxbsp_core::{AccessPattern, Interleaved};

    fn cfg(delay: u64) -> SimConfig {
        SimConfig::new(4, 16, delay)
    }

    #[test]
    fn checkin_recycles_and_stats_track() {
        let pool = SessionPool::new(8);
        {
            let _a = pool.checkout(cfg(14));
            assert_eq!(pool.stats().in_use, 1);
        }
        assert_eq!(pool.stats(), PoolStats { idle: 1, in_use: 0, checkouts: 1, reuses: 0 });
        {
            let _b = pool.checkout(cfg(14));
        }
        let s = pool.stats();
        assert_eq!((s.checkouts, s.reuses, s.idle), (2, 1, 1));
    }

    #[test]
    fn max_idle_bounds_retention() {
        let pool = SessionPool::new(1);
        let a = pool.checkout(cfg(14));
        let b = pool.checkout(cfg(14));
        drop(a);
        drop(b);
        assert_eq!(pool.stats().idle, 1, "second check-in is dropped, not retained");
    }

    #[test]
    fn recycled_sessions_step_identically_to_fresh_ones() {
        let pool = SessionPool::new(4);
        let pat = AccessPattern::scatter(4, &[0, 1, 2, 3, 0, 0, 5, 9]);
        let map = Interleaved::new(16);
        let fresh = SimulatorBackend::new(cfg(6)).step(&pat, &map).cycles;
        // Warm the pool with a *different* config, then check out with
        // the target one: the reconfigure path must be bit-identical.
        drop(pool.checkout(cfg(14)));
        let mut warm = pool.checkout(cfg(6));
        assert_eq!(warm.step(&pat, &map).cycles, fresh);
        // And an untouched-config recycle too.
        drop(warm);
        let mut again = pool.checkout(cfg(6));
        assert_eq!(again.step(&pat, &map).cycles, fresh);
    }

    #[test]
    fn pool_is_shared_across_threads() {
        let pool = SessionPool::new(16);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..8 {
                        let mut b = pool.checkout(cfg(14));
                        let pat = AccessPattern::scatter(4, &[0, 1, 2, 3]);
                        let _ = b.step(&pat, &Interleaved::new(16));
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.checkouts, 32);
        assert_eq!(s.in_use, 0);
        assert!(s.reuses > 0, "threads must recycle warm sessions");
    }
}
