//! The discrete-event simulation core.
//!
//! Each memory request follows a fixed pipeline:
//!
//! ```text
//! processor issue ──latency──▶ section port ──▶ bank queue ──▶ bank busy d ──latency──▶ reply
//!      (rate 1/g)              (rate ports/cycle)    (FIFO)       (rate 1/d)
//! ```
//!
//! Because transit latency is uniform, requests reach their bank in
//! issue order, so the section limiter and bank occupancy can be
//! resolved *inline* at issue time; the event queue only carries
//! processor issue attempts and (when the outstanding-request window is
//! bounded) reply completions. Under a
//! [`BankDelayModel::Distance`] model the per-pair travel term shifts
//! arrival times, but the crossbar is defined to preserve issue order
//! at each bank (requests are tagged at injection), so arbitration
//! stays issue-ordered and the inline resolution — and the wheel/heap
//! bit-identity — carries over unchanged. This keeps the simulator at a few queue
//! operations per request — experiments with millions of requests run
//! in milliseconds — while still modelling bank queueing exactly.
//!
//! The event queue itself is pluggable ([`SchedulerKind`]): the default
//! is a hierarchical time wheel (the `wheel` module) with `O(1)` pushes
//! and amortized `O(1)` pops; a binary heap is retained as the
//! differential-testing oracle. Both realize the identical total order
//! `(time, kind, proc, seq)` — completions before issues at equal
//! times, then processor index — so results are bit-identical.
//!
//! The same arrival-order property admits a stronger shortcut, the
//! **bank-epoch engine** ([`dxbsp_core::EngineKind::BankEpoch`], the
//! default): when no optional feature interleaves events across
//! requests — no issue window, uniform network, no bank cache, no
//! strip-mining — every processor's `j`-th request issues at exactly
//! `j·g`, so the event queue's `(time, proc)` order is a plain
//! position-major walk of the per-processor streams and each FIFO
//! bank's schedule collapses to the prefix recurrence
//! `start = max(arrive, bank_free)`. `Simulator::run_prepared`
//! dispatches whole supersteps through that single bulk pass
//! (`run_epoch`), bit-identically, and punts — explicitly, via
//! [`SimConfig::epoch_applies`] — to the event loop when a feature
//! demands real event dispatch. The event engine remains the
//! differential oracle.
//!
//! The per-run working state (bank occupancy, processor streams, LRU
//! caches, the event queue) lives in a `Scratch` that the engine layer
//! ([`crate::engine`]) reuses across supersteps; [`Simulator::run`]
//! allocates a fresh one per call, so its results are independent of
//! any prior run either way.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dxbsp_core::{AccessPattern, BankDelayModel, BankMap, StreamGroups};
use dxbsp_telemetry::{BankTrack, NoopProbe, Probe, RequestTiming};

use crate::config::{NetworkModel, SchedulerKind, SimConfig};
use crate::stats::{BankStats, ProcStats, SimResult};
use crate::wheel::TimeWheel;

/// A configured simulator. Cheap to clone; every [`Simulator::run`] is
/// independent and deterministic.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
}

/// Events are packed into a `u64` key whose numeric order is the
/// simulator's arbitration order at equal times: event kind in the top
/// bits (completions rank below issues), then processor index, then a
/// sequence number breaking remaining ties in scheduling order. Both
/// schedulers order entries by `(time, key)`, so the packing *is* the
/// total order `(time, kind, proc, seq)` of the original heap tuple.
const KIND_SHIFT: u32 = 62;
const PROC_SHIFT: u32 = 40;
const PROC_MASK: u64 = (1 << (KIND_SHIFT - PROC_SHIFT)) - 1;
const KIND_COMPLETE: u64 = 0;
const KIND_ISSUE: u64 = 1;

/// Timings per [`Probe::request_batch`] flush from the epoch engine:
/// large enough to amortize the call, small enough (~72 KiB) that the
/// slice is still cache-resident when the probe consumes it.
const EPOCH_PROBE_CHUNK: usize = 1024;

#[inline]
fn pack(kind: u64, proc: usize, seq: u64) -> u64 {
    debug_assert!(seq < 1 << PROC_SHIFT, "sequence number overflowed the event key");
    (kind << KIND_SHIFT) | ((proc as u64) << PROC_SHIFT) | seq
}

/// Heap entry: `(time, packed key)` — `Reverse` makes the max-heap a
/// min-queue on the same order the wheel realizes.
type HeapEntry = Reverse<(u64, u64)>;

/// Per-bank service-time lookup the epoch engine's hot loop is
/// monomorphized over: the `Uniform` instantiation keeps the loop's
/// register-resident scalar (no per-request load), `PerBank` indexes
/// its slice. `Distance` never reaches the epoch engine
/// ([`SimConfig::epoch_applies`] punts it).
trait EpochDelay {
    fn service(&self, bank: usize) -> u64;
}

struct UniformDelay(u64);

impl EpochDelay for UniformDelay {
    #[inline(always)]
    fn service(&self, _bank: usize) -> u64 {
        self.0
    }
}

struct PerBankDelay<'a>(&'a [u64]);

impl EpochDelay for PerBankDelay<'_> {
    #[inline(always)]
    fn service(&self, bank: usize) -> u64 {
        self.0[bank]
    }
}

/// The operations the event loop needs from a scheduler. Implemented by
/// the binary heap (oracle) and the time wheel (default); the loop is
/// monomorphized over this, so neither pays dynamic dispatch.
trait EventQueue {
    fn push(&mut self, time: u64, key: u64);
    fn pop(&mut self) -> Option<(u64, u64)>;
    /// Cascade operations performed this run (time wheel only — the
    /// heap and the ring never re-bucket entries).
    fn cascades(&self) -> u64 {
        0
    }
}

impl EventQueue for BinaryHeap<HeapEntry> {
    #[inline]
    fn push(&mut self, time: u64, key: u64) {
        BinaryHeap::push(self, Reverse((time, key)));
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, u64)> {
        BinaryHeap::pop(self).map(|Reverse(e)| e)
    }
}

impl EventQueue for TimeWheel {
    #[inline]
    fn push(&mut self, time: u64, key: u64) {
        TimeWheel::push(self, time, key);
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, u64)> {
        TimeWheel::pop(self)
    }

    fn cascades(&self) -> u64 {
        TimeWheel::cascades(self)
    }
}

/// Degenerate queue for the unbounded-window machine class: with no
/// completions, the queue holds at most one pending Issue event per
/// processor, so a per-processor slot array plus an occupancy bitmask
/// replaces any general priority queue. Pop is an argmin over the
/// occupied slots on `(time, key)` — identical order to the heap and
/// the wheel (the packed key embeds the processor index, so equal-time
/// ties resolve by processor exactly as the tuple order does).
///
/// Only valid when `window.is_none()` and `procs <= 64` (one mask
/// word); the simulator falls back to the wheel otherwise.
#[derive(Debug, Clone, Default)]
struct IssueRing {
    times: Vec<u64>,
    keys: Vec<u64>,
    /// Bit `p` set ⇔ processor `p` has a pending issue event.
    mask: u64,
}

impl IssueRing {
    /// Capacity for one pending event per processor.
    fn reset(&mut self, procs: usize) {
        debug_assert!(procs <= 64, "issue ring is one mask word wide");
        self.times.clear();
        self.times.resize(procs, 0);
        self.keys.clear();
        self.keys.resize(procs, 0);
        self.mask = 0;
    }
}

impl EventQueue for IssueRing {
    #[inline]
    fn push(&mut self, time: u64, key: u64) {
        let p = ((key >> PROC_SHIFT) & PROC_MASK) as usize;
        debug_assert_eq!(self.mask >> p & 1, 0, "processor {p} already has a pending event");
        self.times[p] = time;
        self.keys[p] = key;
        self.mask |= 1 << p;
    }

    #[inline]
    fn pop(&mut self) -> Option<(u64, u64)> {
        let mut occ = self.mask;
        if occ == 0 {
            return None;
        }
        let mut best = usize::MAX;
        let mut best_entry = (u64::MAX, u64::MAX);
        while occ != 0 {
            let p = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            let entry = (self.times[p], self.keys[p]);
            if entry < best_entry {
                best_entry = entry;
                best = p;
            }
        }
        self.mask &= !(1 << best);
        Some(best_entry)
    }
}

/// Per-section rate limiter: a virtual-time token bucket admitting
/// `ports` requests per cycle, in units of 1/ports of a cycle.
#[derive(Debug, Clone, Copy, Default)]
struct SectionGate {
    virtual_time: u64,
}

impl SectionGate {
    /// Admits a request arriving at `cycle`; returns the cycle at which
    /// it is forwarded to its bank. Saturates instead of wrapping when
    /// `cycle * ports` exceeds `u64::MAX` (pathological but reachable:
    /// virtual time is kept in units of 1/ports of a cycle).
    fn admit(&mut self, cycle: u64, ports: u64) -> u64 {
        let slot = self.virtual_time.max(cycle.saturating_mul(ports));
        self.virtual_time = slot.saturating_add(1);
        slot / ports
    }
}

#[derive(Debug, Clone, Default)]
struct ProcState {
    /// This processor's requests as bank indices, in issue order.
    stream_banks: Vec<u32>,
    /// The matching addresses — filled only when a bank cache is
    /// configured (the only consumer), so the common no-cache path
    /// streams through one u32 per request instead of a (usize, u64)
    /// pair.
    stream_addrs: Vec<u64>,
    next: usize,
    next_issue: u64,
    outstanding: usize,
    /// Set when the processor found its window full; cleared by the
    /// next completion, which also reschedules the issue attempt.
    blocked_since: Option<u64>,
    stats: ProcStats,
}

impl ProcState {
    /// Clears per-run state, keeping the streams' allocations.
    fn reset(&mut self) {
        self.stream_banks.clear();
        self.stream_addrs.clear();
        self.next = 0;
        self.next_issue = 0;
        self.outstanding = 0;
        self.blocked_since = None;
        self.stats = ProcStats::default();
    }
}

/// Reusable per-run working state: bank occupancy and statistics,
/// per-processor request streams, per-bank LRU caches, section gates,
/// and the event queue (both scheduler variants; the unused one stays
/// empty). Resetting a `Scratch` clears contents but keeps allocations,
/// so replaying many supersteps (or sweeping many patterns) through one
/// `Scratch` avoids reallocating `O(banks)` vectors per run — up to
/// `x·p = 1024` banks on the paper's machines.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scratch {
    procs: Vec<ProcState>,
    bank_free: Vec<u64>,
    bank_stats: Vec<BankStats>,
    caches: Vec<Vec<u64>>,
    gates: Vec<SectionGate>,
    heap: BinaryHeap<HeapEntry>,
    wheel: TimeWheel,
    ring: IssueRing,
    /// Staging buffer for the bulk address→bank translation.
    bank_buf: Vec<u32>,
    /// Per-processor CSR view of the bank stream (epoch engine input).
    grouped: StreamGroups,
    /// Probe delivery buffer for the epoch engine: resolved timings
    /// accumulate here and flush to [`Probe::request_batch`] in
    /// cache-sized slices.
    timings: Vec<RequestTiming>,
    /// Exact per-bank aggregates for [`Probe::epoch_end`], rebuilt
    /// from `bank_stats` at the end of each epoch.
    bank_tracks: Vec<BankTrack>,
    /// Exact per-processor request counts for [`Probe::epoch_end`].
    proc_reqs: Vec<u64>,
}

impl Scratch {
    /// The bank index of each request, as translated by the last
    /// [`Simulator::prepare`] call.
    pub(crate) fn bank_indices(&self) -> &[u32] {
        &self.bank_buf
    }

    /// Prepares the scratch for one run under `cfg`: every container is
    /// emptied and resized, so results are bit-identical to a run on a
    /// freshly allocated `Scratch` (bank-cache contents included —
    /// caches start cold each superstep).
    fn reset(&mut self, cfg: &SimConfig) {
        self.procs.truncate(cfg.procs);
        for st in &mut self.procs {
            st.reset();
        }
        self.procs.resize_with(cfg.procs, ProcState::default);
        self.bank_free.clear();
        self.bank_free.resize(cfg.banks, 0);
        self.bank_stats.clear();
        self.bank_stats.resize(cfg.banks, BankStats::default());
        if cfg.bank_cache.is_some() {
            self.caches.truncate(cfg.banks);
            for c in &mut self.caches {
                c.clear();
            }
            self.caches.resize_with(cfg.banks, Vec::new);
        } else {
            self.caches.clear();
        }
        let sections = match cfg.network {
            NetworkModel::Uniform => 1,
            NetworkModel::Sectioned { sections, .. } => sections,
        };
        self.gates.clear();
        self.gates.resize(sections, SectionGate::default());
        // All queues drain fully in any completed run; the clear/rewind
        // here also covers runs abandoned by a panic the caller caught.
        self.heap.clear();
        if Simulator::use_ring(cfg) {
            self.ring.reset(cfg.procs);
        } else if cfg.scheduler == SchedulerKind::Wheel {
            self.wheel.reset();
        }
    }
}

impl Simulator {
    /// Creates a simulator for `cfg`.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Simulates one superstep: all requests of `pat` are issued (each
    /// processor in its own order, one per `issue_gap` cycles) and the
    /// run ends when the last reply returns.
    ///
    /// # Panics
    ///
    /// Panics if the pattern was built for a different processor count
    /// or `map` targets a different bank count than the configuration.
    #[must_use]
    pub fn run<M: BankMap>(&self, pat: &AccessPattern, map: &M) -> SimResult {
        self.run_probed(pat, map, &mut NoopProbe)
    }

    /// Like [`Simulator::run`], with every hook of `probe` live: the
    /// probe observes each request's pipeline timing, window stalls,
    /// and scheduler cascades. Probing never changes the result — a
    /// probed run is bit-identical to an unprobed one.
    #[must_use]
    pub fn run_probed<M: BankMap, P: Probe>(
        &self,
        pat: &AccessPattern,
        map: &M,
        probe: &mut P,
    ) -> SimResult {
        let mut scratch = Scratch::default();
        self.run_reusing_probed(&mut scratch, pat, map, probe)
    }

    /// Like [`Simulator::run`], but reusing `scratch`'s allocations.
    /// The scratch is fully reset first, so the result is bit-identical
    /// to an independent [`Simulator::run`] call.
    #[cfg(test)]
    pub(crate) fn run_reusing(
        &self,
        scratch: &mut Scratch,
        pat: &AccessPattern,
        map: &dyn BankMap,
    ) -> SimResult {
        self.run_reusing_probed(scratch, pat, map, &mut NoopProbe)
    }

    /// [`Simulator::run_reusing`] with a live probe.
    pub(crate) fn run_reusing_probed<P: Probe>(
        &self,
        scratch: &mut Scratch,
        pat: &AccessPattern,
        map: &dyn BankMap,
        probe: &mut P,
    ) -> SimResult {
        self.prepare(scratch, pat, map);
        self.run_prepared(scratch, pat, probe)
    }

    /// Resets `scratch` and translates `pat`'s address stream to bank
    /// indices (`scratch.bank_indices()`), without running anything.
    /// This is the natural seam for per-superstep classification: the
    /// hybrid engine inspects the filled bank buffer and either charges
    /// the step closed-form or continues with
    /// [`Simulator::run_prepared`] — the exact event loop either way.
    pub(crate) fn prepare(&self, scratch: &mut Scratch, pat: &AccessPattern, map: &dyn BankMap) {
        assert_eq!(pat.procs(), self.cfg.procs, "pattern/processor-count mismatch");
        assert_eq!(map.num_banks(), self.cfg.banks, "map/bank-count mismatch");
        scratch.reset(&self.cfg);
        // One virtual call translates the whole address stream; the
        // per-processor distribution is then branch-free u32 pushes.
        map.fill_banks(pat.addrs(), &mut scratch.bank_buf);
    }

    /// Runs a scratch readied by [`Simulator::prepare`] for this same
    /// pattern: through the bulk bank-epoch engine when it applies
    /// ([`SimConfig::epoch_applies`]), else through the event loop.
    pub(crate) fn run_prepared<P: Probe>(
        &self,
        scratch: &mut Scratch,
        pat: &AccessPattern,
        probe: &mut P,
    ) -> SimResult {
        if self.cfg.epoch_applies() {
            let Scratch {
                procs,
                bank_buf,
                bank_free,
                bank_stats,
                grouped,
                timings,
                bank_tracks,
                proc_reqs,
                ..
            } = &mut *scratch;
            grouped.group(self.cfg.procs, pat.proc_ids(), bank_buf);
            return Self::run_epoch(
                &self.cfg,
                grouped,
                procs,
                bank_free,
                bank_stats,
                timings,
                bank_tracks,
                proc_reqs,
                probe,
            );
        }
        let Scratch { procs, bank_buf, .. } = &mut *scratch;
        if self.cfg.bank_cache.is_some() {
            for ((&p, &b), &a) in pat.proc_ids().iter().zip(&*bank_buf).zip(pat.addrs()) {
                let st = &mut procs[p as usize];
                st.stream_banks.push(b);
                st.stream_addrs.push(a);
            }
        } else {
            for (&p, &b) in pat.proc_ids().iter().zip(&*bank_buf) {
                procs[p as usize].stream_banks.push(b);
            }
        }
        self.run_scratch(scratch, probe)
    }

    /// Simulates raw per-processor bank-index streams (useful when the
    /// caller has already resolved addresses to banks).
    ///
    /// # Panics
    ///
    /// Panics if a bank cache is configured — cache behaviour depends
    /// on addresses, which bank-index streams no longer carry; use
    /// [`Simulator::run`] instead. Also panics on a stream/processor
    /// count mismatch.
    #[must_use]
    pub fn run_streams(&self, streams: Vec<Vec<usize>>) -> SimResult {
        assert!(self.cfg.bank_cache.is_none(), "bank caches need addresses: use Simulator::run");
        assert_eq!(streams.len(), self.cfg.procs, "stream/processor-count mismatch");
        let mut scratch = Scratch::default();
        scratch.reset(&self.cfg);
        for (p, s) in streams.into_iter().enumerate() {
            scratch.procs[p].stream_banks.extend(s.into_iter().map(|b| b as u32));
        }
        if self.cfg.epoch_applies() {
            let Scratch {
                procs,
                bank_free,
                bank_stats,
                grouped,
                timings,
                bank_tracks,
                proc_reqs,
                ..
            } = &mut scratch;
            grouped.from_segments(procs.iter().map(|st| st.stream_banks.as_slice()));
            return Self::run_epoch(
                &self.cfg,
                grouped,
                procs,
                bank_free,
                bank_stats,
                timings,
                bank_tracks,
                proc_reqs,
                &mut NoopProbe,
            );
        }
        self.run_scratch(&mut scratch, &mut NoopProbe)
    }

    /// Whether the per-processor issue ring can stand in for the wheel:
    /// with an unbounded window there are no completion events, so at
    /// most one issue event per processor is ever pending. The heap is
    /// exempt — it stays the unmodified differential oracle.
    fn use_ring(cfg: &SimConfig) -> bool {
        cfg.scheduler == SchedulerKind::Wheel && cfg.window.is_none() && cfg.procs <= 64
    }

    /// Whether every optional pipeline feature is off, so the event
    /// loop can drop to its branch-free `SIMPLE` instantiation. Each
    /// skipped branch is a no-op under these conditions: no window ⇒
    /// no stalls or completion events, no strip ⇒ no startup charge,
    /// uniform network ⇒ the section gate forwards at arrival, no
    /// cache ⇒ service is always the bank delay.
    fn simple(cfg: &SimConfig) -> bool {
        cfg.window.is_none()
            && cfg.strip.is_none()
            && cfg.bank_cache.is_none()
            && !cfg.record_events
            && matches!(cfg.network, NetworkModel::Uniform)
    }

    /// Executes one whole superstep as a single bulk pass — the
    /// bank-epoch engine. No event queue is involved: under the
    /// [`SimConfig::epoch_applies`] conditions every processor's `j`-th
    /// request issues at exactly `j·g`, so visiting requests
    /// position-major (and processor-minor within a position) *is* the
    /// event queue's `(time, kind, proc, seq)` order, and each FIFO
    /// bank's service schedule is the arrival-ordered prefix recurrence
    /// `start_i = max(arrive_i, start_{i-1} + d)` carried by
    /// `bank_free`. Every statistic the event loop keeps is computed
    /// from the same values in the same order, so the `SimResult` is
    /// bit-identical to the oracle's — a property the three-way
    /// differential proptests pin.
    ///
    /// Probes receive resolved timings through
    /// [`Probe::request_batch`] in issue-ordered, cache-sized slices
    /// instead of one callback per request — and may bound that stream:
    /// once a flush returns a zero budget the engine stops
    /// materializing timings entirely, leaving only the exact
    /// per-epoch aggregates delivered through [`Probe::epoch_end`].
    #[allow(clippy::too_many_arguments)] // the bulk hot loop takes the scratch by parts
    fn run_epoch<P: Probe>(
        cfg: &SimConfig,
        grouped: &StreamGroups,
        procs: &mut [ProcState],
        bank_free: &mut [u64],
        bank_stats: &mut [BankStats],
        timings: &mut Vec<RequestTiming>,
        bank_tracks: &mut Vec<BankTrack>,
        proc_reqs: &mut Vec<u64>,
        probe: &mut P,
    ) -> SimResult {
        debug_assert!(cfg.epoch_applies(), "epoch engine dispatched on an ineligible config");
        match &cfg.delay {
            BankDelayModel::Uniform(d) => Self::run_epoch_with(
                UniformDelay(*d),
                cfg,
                grouped,
                procs,
                bank_free,
                bank_stats,
                timings,
                bank_tracks,
                proc_reqs,
                probe,
            ),
            BankDelayModel::PerBank(v) => Self::run_epoch_with(
                PerBankDelay(v),
                cfg,
                grouped,
                procs,
                bank_free,
                bank_stats,
                timings,
                bank_tracks,
                proc_reqs,
                probe,
            ),
            BankDelayModel::Distance { .. } => {
                unreachable!("distance models punt the epoch engine to the event loop")
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // the bulk hot loop takes the scratch by parts
    fn run_epoch_with<D: EpochDelay, P: Probe>(
        delay: D,
        cfg: &SimConfig,
        grouped: &StreamGroups,
        procs: &mut [ProcState],
        bank_free: &mut [u64],
        bank_stats: &mut [BankStats],
        timings: &mut Vec<RequestTiming>,
        bank_tracks: &mut Vec<BankTrack>,
        proc_reqs: &mut Vec<u64>,
        probe: &mut P,
    ) -> SimResult {
        let requests = grouped.len();
        let offs = grouped.offsets();
        let vals = grouped.values();
        let (g, lat) = (cfg.issue_gap, cfg.latency);
        let mut events: Vec<crate::stats::RequestEvent> =
            if cfg.record_events { Vec::with_capacity(requests) } else { Vec::new() };
        timings.clear();
        // Remaining raw timings the probe wants; refreshed at each
        // flush. At zero the loop stops building `RequestTiming`s —
        // the probe's exact aggregates arrive via `epoch_end` below.
        let mut budget = usize::MAX;
        let mut last_done = 0u64;
        let mut issue = 0u64;
        for j in 0..grouped.max_segment_len() {
            let arrive = issue + lat;
            for (p, st) in procs.iter_mut().enumerate() {
                let at = offs[p] as usize + j;
                if at >= offs[p + 1] as usize {
                    continue;
                }
                let bank = vals[at] as usize;
                let d = delay.service(bank);
                let start = arrive.max(bank_free[bank]);
                bank_free[bank] = start + d;
                let wait = start - arrive;
                let bs = &mut bank_stats[bank];
                bs.requests += 1;
                bs.busy_cycles += d;
                bs.queue_wait += wait;
                bs.max_queue_wait = bs.max_queue_wait.max(wait);
                let done = start + d + lat;
                st.stats.issued += 1;
                st.stats.done_at = st.stats.done_at.max(done);
                last_done = last_done.max(done);
                if P::ENABLED && budget > 0 {
                    timings.push(RequestTiming {
                        proc: p,
                        bank,
                        issued: issue,
                        arrived: arrive,
                        forwarded: arrive,
                        start,
                        end: start + d,
                        done,
                        cache_hit: false,
                    });
                    if timings.len() >= EPOCH_PROBE_CHUNK {
                        budget = probe.request_batch(timings);
                        timings.clear();
                    }
                }
                if cfg.record_events {
                    events.push(crate::stats::RequestEvent {
                        proc: p,
                        bank,
                        issued: issue,
                        start,
                        end: start + d,
                    });
                }
            }
            issue += g;
        }
        if P::ENABLED {
            if !timings.is_empty() {
                probe.request_batch(timings);
                timings.clear();
            }
            // The exact-aggregate channel: this epoch's per-bank and
            // per-processor totals, straight from the statistics the
            // loop just computed (the scratch was reset for this run,
            // so they are this epoch's deltas).
            bank_tracks.clear();
            bank_tracks.extend(bank_stats.iter().map(|s| BankTrack {
                requests: s.requests as u64,
                busy_cycles: s.busy_cycles,
                queue_wait: s.queue_wait,
                max_queue_wait: s.max_queue_wait,
                cache_hits: s.cache_hits as u64,
            }));
            proc_reqs.clear();
            proc_reqs.extend(procs.iter().map(|st| st.stats.issued as u64));
            probe.epoch_end(requests as u64, bank_tracks, proc_reqs);
            // No event queue ran, so there are no cascades to report —
            // but fire the hook anyway so probed epoch and ring/heap
            // runs see the same hook sequence.
            probe.scheduler_cascades(0);
        }
        SimResult {
            cycles: last_done,
            requests,
            banks: bank_stats.to_vec(),
            procs: procs.iter().map(|s| s.stats).collect(),
            network_wait: 0,
            events,
        }
    }

    fn run_scratch<P: Probe>(&self, scratch: &mut Scratch, probe: &mut P) -> SimResult {
        let Scratch { procs, bank_free, bank_stats, caches, gates, heap, wheel, ring, .. } =
            &mut *scratch;
        if Self::use_ring(&self.cfg) {
            return if Self::simple(&self.cfg) {
                Self::run_events::<_, _, true>(
                    &self.cfg, ring, procs, bank_free, bank_stats, caches, gates, probe,
                )
            } else {
                Self::run_events::<_, _, false>(
                    &self.cfg, ring, procs, bank_free, bank_stats, caches, gates, probe,
                )
            };
        }
        match self.cfg.scheduler {
            SchedulerKind::Wheel => Self::run_events::<_, _, false>(
                &self.cfg, wheel, procs, bank_free, bank_stats, caches, gates, probe,
            ),
            SchedulerKind::Heap => Self::run_events::<_, _, false>(
                &self.cfg, heap, procs, bank_free, bank_stats, caches, gates, probe,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)] // the monomorphized hot loop takes the scratch by parts
    fn run_events<Q: EventQueue, P: Probe, const SIMPLE: bool>(
        cfg: &SimConfig,
        queue: &mut Q,
        procs: &mut [ProcState],
        bank_free: &mut [u64],
        bank_stats: &mut [BankStats],
        caches: &mut [Vec<u64>],
        gates: &mut [SectionGate],
        probe: &mut P,
    ) -> SimResult {
        assert!(procs.len() as u64 <= PROC_MASK, "processor index must fit the packed event key");
        debug_assert!(!SIMPLE || Self::simple(cfg), "SIMPLE loop needs every feature off");
        let requests: usize = procs.iter().map(|st| st.stream_banks.len()).sum();

        let (_sections, ports) = match cfg.network {
            NetworkModel::Uniform => (1usize, u64::MAX),
            NetworkModel::Sectioned { sections, ports } => (sections, ports as u64),
        };
        let banks_per_section = cfg.banks / gates.len();

        let mut network_wait = 0u64;
        let mut last_done = 0u64;
        let mut events: Vec<crate::stats::RequestEvent> =
            if cfg.record_events { Vec::with_capacity(requests) } else { Vec::new() };

        // The queue orders events by (time, kind, proc, seq): at equal
        // times all completions land before any issue, and issues order
        // by processor index — the same arbitration as the cycle-stepped
        // reference simulator, so the two agree exactly. `seq` breaks
        // the remaining ties deterministically.
        let mut seq = 0u64;
        let mut push = |queue: &mut Q, t: u64, kind: u64, p: usize| {
            queue.push(t, pack(kind, p, seq));
            seq += 1;
        };
        for (p, st) in procs.iter_mut().enumerate() {
            if !st.stream_banks.is_empty() {
                push(queue, 0, KIND_ISSUE, p);
            }
        }

        while let Some((now, key)) = queue.pop() {
            let p = ((key >> PROC_SHIFT) & PROC_MASK) as usize;
            if key >> KIND_SHIFT == KIND_ISSUE {
                let st = &mut procs[p];
                if st.next >= st.stream_banks.len() {
                    continue;
                }
                if !SIMPLE {
                    if let Some(w) = cfg.window {
                        if st.outstanding >= w {
                            // Stall until a completion wakes us.
                            if st.blocked_since.is_none() {
                                st.blocked_since = Some(now);
                            }
                            continue;
                        }
                    }
                }
                let idx = st.next;
                let bank = st.stream_banks[idx] as usize;
                st.next += 1;
                st.outstanding += 1;
                st.stats.issued += 1;
                st.next_issue = now + cfg.issue_gap;
                if !SIMPLE {
                    if let Some(strip) = cfg.strip {
                        if st.stats.issued % strip.vector_length == 0 {
                            st.next_issue += strip.startup;
                        }
                    }
                }

                // Resolve the request's pipeline inline. A distance
                // model adds its per-pair travel term to both legs
                // (zero for uniform and per-bank models).
                let travel = cfg.delay.travel(p, bank);
                let arrive = now + cfg.latency + travel;
                let forwarded = if SIMPLE || ports == u64::MAX {
                    arrive
                } else {
                    let section = bank / banks_per_section;
                    gates[section].admit(arrive, ports)
                };
                network_wait += forwarded - arrive;
                // A bank-cache hit shortens the service time; the
                // LRU is updated in service order.
                let mut cache_hit = false;
                let service = if SIMPLE {
                    cfg.delay.service(bank)
                } else {
                    match cfg.bank_cache {
                        Some(c) => {
                            let addr = st.stream_addrs[idx];
                            let lru = &mut caches[bank];
                            if let Some(pos) = lru.iter().position(|&a| a == addr) {
                                lru.remove(pos);
                                lru.insert(0, addr);
                                bank_stats[bank].cache_hits += 1;
                                cache_hit = true;
                                c.hit_delay
                            } else {
                                lru.insert(0, addr);
                                lru.truncate(c.lines);
                                cfg.delay.service(bank)
                            }
                        }
                        None => cfg.delay.service(bank),
                    }
                };
                let start = forwarded.max(bank_free[bank]);
                bank_free[bank] = start + service;
                let wait = start - forwarded;
                let bs = &mut bank_stats[bank];
                bs.requests += 1;
                bs.busy_cycles += service;
                bs.queue_wait += wait;
                bs.max_queue_wait = bs.max_queue_wait.max(wait);

                let done = start + service + cfg.latency + travel;
                st.stats.done_at = st.stats.done_at.max(done);
                last_done = last_done.max(done);
                if P::ENABLED {
                    probe.request(RequestTiming {
                        proc: p,
                        bank,
                        issued: now,
                        arrived: arrive,
                        forwarded,
                        start,
                        end: start + service,
                        done,
                        cache_hit,
                    });
                }
                if !SIMPLE && cfg.record_events {
                    events.push(crate::stats::RequestEvent {
                        proc: p,
                        bank,
                        issued: now,
                        start,
                        end: start + service,
                    });
                }

                if !SIMPLE && cfg.window.is_some() {
                    push(queue, done, KIND_COMPLETE, p);
                } else {
                    st.outstanding -= 1;
                }
                if st.next < st.stream_banks.len() {
                    push(queue, st.next_issue, KIND_ISSUE, p);
                }
            } else {
                let st = &mut procs[p];
                st.outstanding -= 1;
                if let Some(since) = st.blocked_since.take() {
                    st.stats.window_stall += now - since;
                    if P::ENABLED {
                        probe.window_stall(p, since, now);
                    }
                    if st.next < st.stream_banks.len() {
                        push(queue, now.max(st.next_issue), KIND_ISSUE, p);
                    }
                }
            }
        }

        if P::ENABLED {
            probe.scheduler_cascades(queue.cascades());
        }

        SimResult {
            cycles: last_done,
            requests,
            banks: bank_stats.to_vec(),
            procs: procs.iter().map(|s| s.stats).collect(),
            network_wait,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxbsp_core::Interleaved;

    fn hot_pattern(procs: usize, n: usize) -> AccessPattern {
        AccessPattern::scatter(procs, &vec![0u64; n])
    }

    fn spread_pattern(procs: usize, n: usize) -> AccessPattern {
        let addrs: Vec<u64> = (0..n as u64).collect();
        AccessPattern::scatter(procs, &addrs)
    }

    #[test]
    fn single_request_takes_bank_delay() {
        let sim = Simulator::new(SimConfig::new(1, 4, 6));
        let res = sim.run(&hot_pattern(1, 1), &Interleaved::new(4));
        assert_eq!(res.cycles, 6);
        assert_eq!(res.requests, 1);
        assert_eq!(res.banks[0].requests, 1);
    }

    #[test]
    fn hot_bank_serializes_at_rate_d() {
        // One processor, 10 requests to one bank, d=6: requests queue
        // and the bank finishes at exactly 10·6 cycles.
        let sim = Simulator::new(SimConfig::new(1, 4, 6));
        let res = sim.run(&hot_pattern(1, 10), &Interleaved::new(4));
        assert_eq!(res.cycles, 60);
        assert_eq!(res.banks[0].busy_cycles, 60);
        // Request j issued at cycle j, starts at 6j: waits 5j cycles.
        assert_eq!(res.banks[0].max_queue_wait, 5 * 9);
    }

    #[test]
    fn conflict_free_unit_stride_is_issue_bound() {
        // One processor, 16 requests to 16 distinct banks, d=6, g=1:
        // last issued at cycle 15, completes at 15 + 6.
        let sim = Simulator::new(SimConfig::new(1, 16, 6));
        let res = sim.run(&spread_pattern(1, 16), &Interleaved::new(16));
        assert_eq!(res.cycles, 15 + 6);
        assert_eq!(res.total_queue_wait(), 0);
    }

    #[test]
    fn multiprocessor_hotspot_aggregates_contention() {
        // 8 processors × 8 requests each, all to address 0, d=14: the
        // hot bank serves 64 requests back-to-back.
        let sim = Simulator::new(SimConfig::new(8, 64, 14));
        let res = sim.run(&hot_pattern(8, 64), &Interleaved::new(64));
        assert_eq!(res.cycles, 14 * 64);
        assert_eq!(res.max_bank_load(), 64);
    }

    #[test]
    fn issue_gap_slows_issue_side() {
        let cfg = SimConfig::new(1, 16, 1).with_issue_gap(4);
        let sim = Simulator::new(cfg);
        let res = sim.run(&spread_pattern(1, 8), &Interleaved::new(16));
        // Last of 8 requests issues at 7·4 = 28, bank takes 1 cycle.
        assert_eq!(res.cycles, 29);
    }

    #[test]
    fn latency_added_on_both_legs() {
        let cfg = SimConfig::new(1, 4, 6).with_latency(10);
        let sim = Simulator::new(cfg);
        let res = sim.run(&hot_pattern(1, 1), &Interleaved::new(4));
        assert_eq!(res.cycles, 10 + 6 + 10);
    }

    #[test]
    fn window_one_round_trips_every_request() {
        // window=1 forces a full round trip per request: each takes
        // latency + d + latency, and issue can't overlap.
        let cfg = SimConfig::new(1, 16, 6).with_latency(5).with_window(1);
        let sim = Simulator::new(cfg);
        let res = sim.run(&spread_pattern(1, 4), &Interleaved::new(16));
        assert_eq!(res.cycles, 4 * (5 + 6 + 5));
        assert!(res.procs[0].window_stall > 0);
    }

    #[test]
    fn unbounded_window_beats_bounded() {
        let base = SimConfig::new(4, 64, 14).with_latency(20);
        let spread = spread_pattern(4, 256);
        let map = Interleaved::new(64);
        let free = Simulator::new(base.clone()).run(&spread, &map);
        let tight = Simulator::new(base.with_window(2)).run(&spread, &map);
        assert!(tight.cycles > free.cycles);
    }

    #[test]
    fn section_ports_rate_limit_injection() {
        // 4 procs, 16 banks in one section with 1 port/cycle: 64
        // conflict-free requests drain at 1/cycle through the section
        // even though banks are plentiful.
        let cfg = SimConfig::new(4, 16, 1).with_sections(1, 1);
        let sim = Simulator::new(cfg);
        let res = sim.run(&spread_pattern(4, 64), &Interleaved::new(16));
        assert!(res.cycles >= 63, "cycles={} should be port-bound", res.cycles);
        assert!(res.network_wait > 0);
    }

    #[test]
    fn wide_ports_do_not_limit() {
        let cfg = SimConfig::new(4, 16, 1).with_sections(4, 4);
        let sim = Simulator::new(cfg);
        let res = sim.run(&spread_pattern(4, 64), &Interleaved::new(16));
        assert_eq!(res.network_wait, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SimConfig::new(8, 64, 14).with_window(4).with_latency(7);
        let sim = Simulator::new(cfg);
        let mut pat = AccessPattern::new(8);
        for i in 0..500u64 {
            pat.push(dxbsp_core::Request::write((i % 8) as usize, i * 37 % 101));
        }
        let map = Interleaved::new(64);
        let a = sim.run(&pat, &map);
        let b = sim.run(&pat, &map);
        assert_eq!(a, b);
    }

    #[test]
    fn reused_scratch_matches_fresh_runs() {
        // The same scratch replayed across different patterns (and even
        // different configurations) must reproduce independent runs
        // bit for bit.
        let cfg_a = SimConfig::new(8, 64, 14).with_window(4).with_latency(7);
        let cfg_b = SimConfig::new(4, 16, 6).with_sections(2, 1);
        let map_a = Interleaved::new(64);
        let map_b = Interleaved::new(16);
        let mut pat_a = AccessPattern::new(8);
        let mut pat_b = AccessPattern::new(4);
        for i in 0..300u64 {
            pat_a.push(dxbsp_core::Request::write((i % 8) as usize, i * 37 % 101));
            pat_b.push(dxbsp_core::Request::read((i % 4) as usize, i * 13 % 53));
        }
        let sim_a = Simulator::new(cfg_a);
        let sim_b = Simulator::new(cfg_b);
        let mut scratch = Scratch::default();
        for _ in 0..3 {
            let ra = sim_a.run_reusing(&mut scratch, &pat_a, &map_a);
            assert_eq!(ra, sim_a.run(&pat_a, &map_a));
            let rb = sim_b.run_reusing(&mut scratch, &pat_b, &map_b);
            assert_eq!(rb, sim_b.run(&pat_b, &map_b));
        }
    }

    #[test]
    fn reused_scratch_alternates_schedulers() {
        // One scratch serving wheel and heap runs back to back must
        // leave no state behind in either queue.
        let cfg = SimConfig::new(8, 64, 14).with_window(4).with_latency(7);
        let map = Interleaved::new(64);
        let mut pat = AccessPattern::new(8);
        for i in 0..400u64 {
            pat.push(dxbsp_core::Request::write((i % 8) as usize, i * 29 % 173));
        }
        let wheel_sim = Simulator::new(cfg.clone().with_scheduler(SchedulerKind::Wheel));
        let heap_sim = Simulator::new(cfg.with_scheduler(SchedulerKind::Heap));
        let mut scratch = Scratch::default();
        let expect = wheel_sim.run(&pat, &map);
        for _ in 0..2 {
            assert_eq!(wheel_sim.run_reusing(&mut scratch, &pat, &map), expect);
            assert_eq!(heap_sim.run_reusing(&mut scratch, &pat, &map), expect);
        }
    }

    #[test]
    fn empty_pattern_is_zero_cycles() {
        let sim = Simulator::new(SimConfig::new(2, 8, 6));
        let res = sim.run(&AccessPattern::new(2), &Interleaved::new(8));
        assert_eq!(res.cycles, 0);
        assert_eq!(res.requests, 0);
    }

    #[test]
    fn section_gate_admits_ports_per_cycle() {
        let mut g = SectionGate::default();
        // 5 arrivals at cycle 0 with 2 ports: forwarded at 0,0,1,1,2.
        let f: Vec<u64> = (0..5).map(|_| g.admit(0, 2)).collect();
        assert_eq!(f, vec![0, 0, 1, 1, 2]);
        // A later arrival resets to its own cycle.
        assert_eq!(g.admit(10, 2), 10);
    }

    #[test]
    fn section_gate_saturates_at_extreme_cycles() {
        // cycle * ports would wrap; the gate must saturate, keep its
        // virtual time monotone, and never forward earlier than a
        // previously admitted request.
        let mut g = SectionGate::default();
        let ports = 1u64 << 32;
        let first = g.admit(u64::MAX / 2, ports);
        assert_eq!(first, u64::MAX / ports);
        let second = g.admit(u64::MAX, ports);
        assert!(second >= first, "forwarding went backwards: {second} < {first}");
        // Repeated admissions at the saturation point stay pinned
        // rather than wrapping around to cycle 0.
        for _ in 0..4 {
            assert_eq!(g.admit(u64::MAX, ports), u64::MAX / ports);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_bank_map_rejected() {
        let sim = Simulator::new(SimConfig::new(2, 8, 6));
        let _ = sim.run(&AccessPattern::new(2), &Interleaved::new(16));
    }
}
