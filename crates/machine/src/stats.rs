//! Per-run statistics collected by the simulator.

use serde::{Deserialize, Serialize};

/// Statistics for one memory bank over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// Requests serviced by this bank.
    pub requests: usize,
    /// Cycles the bank spent servicing (requests × d).
    pub busy_cycles: u64,
    /// Total cycles requests spent waiting in this bank's queue.
    pub queue_wait: u64,
    /// Largest queue wait suffered by a single request.
    pub max_queue_wait: u64,
    /// Requests served from the bank cache (zero without one).
    pub cache_hits: usize,
}

impl BankStats {
    /// Folds another run's statistics for the same bank into this one.
    ///
    /// Counters accumulate with *saturating* addition: a session
    /// summing millions of supersteps must not wrap in release builds
    /// or panic in debug builds when a counter tops out — a saturated
    /// total is still an honest "at least this much". `max_queue_wait`
    /// takes the maximum over runs.
    pub fn merge(&mut self, other: &BankStats) {
        self.requests = self.requests.saturating_add(other.requests);
        self.busy_cycles = self.busy_cycles.saturating_add(other.busy_cycles);
        self.queue_wait = self.queue_wait.saturating_add(other.queue_wait);
        self.max_queue_wait = self.max_queue_wait.max(other.max_queue_wait);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
    }
}

/// Statistics for one processor over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcStats {
    /// Requests issued by this processor.
    pub issued: usize,
    /// Cycles the processor spent stalled on a full outstanding-request
    /// window (zero when the window is unbounded).
    pub window_stall: u64,
    /// Cycle at which this processor's last request completed.
    pub done_at: u64,
}

impl ProcStats {
    /// Folds another run's statistics for the same processor into this
    /// one. Counters saturate (see [`BankStats::merge`]); `done_at`
    /// takes the maximum over runs.
    pub fn merge(&mut self, other: &ProcStats) {
        self.issued = self.issued.saturating_add(other.issued);
        self.window_stall = self.window_stall.saturating_add(other.window_stall);
        self.done_at = self.done_at.max(other.done_at);
    }
}

/// Timing of one request through the pipeline (recorded only when
/// [`crate::SimConfig::record_events`] is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestEvent {
    /// Issuing processor.
    pub proc: usize,
    /// Serviced by this bank.
    pub bank: usize,
    /// Issue cycle.
    pub issued: u64,
    /// Cycle the bank began service.
    pub start: u64,
    /// Cycle service finished (excluding the reply leg).
    pub end: u64,
}

/// Result of simulating one superstep (one access pattern).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// Cycles from first issue to last completion.
    pub cycles: u64,
    /// Total requests simulated.
    pub requests: usize,
    /// Per-bank statistics (length = bank count).
    pub banks: Vec<BankStats>,
    /// Per-processor statistics (length = processor count).
    pub procs: Vec<ProcStats>,
    /// Total cycles requests spent queued behind network section ports.
    pub network_wait: u64,
    /// Per-request timings, in issue order (empty unless the
    /// configuration enables `record_events`).
    pub events: Vec<RequestEvent>,
}

impl SimResult {
    /// The largest number of requests any single bank received.
    #[must_use]
    pub fn max_bank_load(&self) -> usize {
        self.banks.iter().map(|b| b.requests).max().unwrap_or(0)
    }

    /// Average cycles per request (`NaN`-free: zero for empty runs).
    #[must_use]
    pub fn cycles_per_request(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cycles as f64 / self.requests as f64
        }
    }

    /// Fraction of bank-service capacity actually used: total busy
    /// cycles over `banks × cycles`. A perfectly balanced, saturating
    /// pattern approaches `1.0`; a single hot bank approaches `1/B`.
    #[must_use]
    pub fn bank_utilization(&self) -> f64 {
        if self.cycles == 0 || self.banks.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.banks.iter().map(|b| b.busy_cycles).sum();
        busy as f64 / (self.cycles as f64 * self.banks.len() as f64)
    }

    /// Total queue-wait cycles across all banks.
    #[must_use]
    pub fn total_queue_wait(&self) -> u64 {
        self.banks.iter().map(|b| b.queue_wait).sum()
    }

    /// Distributional summary of the per-bank request loads.
    #[must_use]
    pub fn bank_load_summary(&self) -> LoadSummary {
        let mut loads: Vec<usize> = self.banks.iter().map(|b| b.requests).collect();
        loads.sort_unstable();
        LoadSummary::from_sorted(&loads)
    }
}

/// Percentile summary of per-bank loads — the imbalance the `d·R`
/// charge prices (mean vs. p99/max is the queue-variance story of the
/// expansion experiments).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadSummary {
    /// Mean load.
    pub mean: f64,
    /// Median load.
    pub p50: usize,
    /// 95th-percentile load.
    pub p95: usize,
    /// 99th-percentile load.
    pub p99: usize,
    /// Maximum load.
    pub max: usize,
}

impl LoadSummary {
    /// Builds a summary from an ascending slice (empty → all zeros).
    #[must_use]
    pub fn from_sorted(loads: &[usize]) -> Self {
        if loads.is_empty() {
            return Self { mean: 0.0, p50: 0, p95: 0, p99: 0, max: 0 };
        }
        debug_assert!(loads.is_sorted(), "loads must be ascending");
        let pct = |q: f64| -> usize {
            let idx = ((loads.len() as f64 - 1.0) * q).round() as usize;
            loads[idx]
        };
        Self {
            mean: loads.iter().sum::<usize>() as f64 / loads.len() as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *loads.last().expect("nonempty"),
        }
    }

    /// Max-to-mean imbalance (1.0 = perfectly even; `NaN`-free).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimResult {
        SimResult {
            cycles: 100,
            requests: 10,
            banks: vec![
                BankStats {
                    requests: 7,
                    busy_cycles: 42,
                    queue_wait: 30,
                    max_queue_wait: 12,
                    cache_hits: 0,
                },
                BankStats {
                    requests: 3,
                    busy_cycles: 18,
                    queue_wait: 0,
                    max_queue_wait: 0,
                    cache_hits: 0,
                },
            ],
            procs: vec![ProcStats { issued: 10, window_stall: 5, done_at: 100 }],
            network_wait: 0,
            events: Vec::new(),
        }
    }

    #[test]
    fn aggregates_compute() {
        let r = sample();
        assert_eq!(r.max_bank_load(), 7);
        assert!((r.cycles_per_request() - 10.0).abs() < 1e-12);
        assert!((r.bank_utilization() - 60.0 / 200.0).abs() < 1e-12);
        assert_eq!(r.total_queue_wait(), 30);
    }

    #[test]
    fn bank_stats_merge_sums_and_maxes() {
        let mut a = BankStats {
            requests: 7,
            busy_cycles: 42,
            queue_wait: 30,
            max_queue_wait: 12,
            cache_hits: 1,
        };
        let b = BankStats {
            requests: 3,
            busy_cycles: 18,
            queue_wait: 5,
            max_queue_wait: 40,
            cache_hits: 2,
        };
        a.merge(&b);
        assert_eq!(a.requests, 10);
        assert_eq!(a.busy_cycles, 60);
        assert_eq!(a.queue_wait, 35);
        assert_eq!(a.max_queue_wait, 40); // max, not sum
        assert_eq!(a.cache_hits, 3);
    }

    #[test]
    fn bank_stats_merge_saturates_instead_of_wrapping() {
        let mut a = BankStats {
            requests: usize::MAX - 1,
            busy_cycles: u64::MAX - 1,
            queue_wait: u64::MAX,
            max_queue_wait: 3,
            cache_hits: 0,
        };
        a.merge(&a.clone());
        assert_eq!(a.requests, usize::MAX);
        assert_eq!(a.busy_cycles, u64::MAX);
        assert_eq!(a.queue_wait, u64::MAX);
    }

    #[test]
    fn proc_stats_merge_sums_and_maxes() {
        let mut a = ProcStats { issued: 10, window_stall: 5, done_at: 100 };
        a.merge(&ProcStats { issued: 4, window_stall: u64::MAX, done_at: 60 });
        assert_eq!(a.issued, 14);
        assert_eq!(a.window_stall, u64::MAX); // saturated
        assert_eq!(a.done_at, 100);
    }

    #[test]
    fn load_summary_percentiles() {
        let loads: Vec<usize> = (1..=100).collect();
        let s = LoadSummary::from_sorted(&loads);
        // Nearest-rank at q=0.5 over indices 0..=99 lands on index 50.
        assert_eq!(s.p50, 51);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.imbalance() - 100.0 / 50.5).abs() < 1e-9);
    }

    #[test]
    fn load_summary_of_empty_is_zero() {
        let s = LoadSummary::from_sorted(&[]);
        assert_eq!(s.max, 0);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn result_summary_uses_bank_requests() {
        let r = sample();
        let s = r.bank_load_summary();
        assert_eq!(s.max, 7);
        // Two banks [3, 7]: the 0.5 nearest rank rounds up to index 1.
        assert_eq!(s.p50, 7);
        assert!((s.mean - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_degenerate_not_nan() {
        let r = SimResult {
            cycles: 0,
            requests: 0,
            banks: vec![],
            procs: vec![],
            network_wait: 0,
            events: Vec::new(),
        };
        assert_eq!(r.max_bank_load(), 0);
        assert_eq!(r.cycles_per_request(), 0.0);
        assert_eq!(r.bank_utilization(), 0.0);
    }
}
