//! Simulator configuration.

use serde::{Deserialize, Serialize};

use dxbsp_core::{BankDelayModel, EngineKind, ExecMode, MachineParams};

/// The interconnect between processors and banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkModel {
    /// Requests reach their bank unimpeded (after `latency` cycles):
    /// the only shared resources are the banks themselves.
    Uniform,
    /// Banks are grouped into `sections` contiguous groups; each section
    /// accepts at most `ports` requests per cycle. Requests to a full
    /// section wait in a FIFO. This reproduces the Cray J90 subsection
    /// behaviour behind the paper's version-(c) congestion experiment.
    Sectioned {
        /// Number of bank sections (must divide the bank count).
        sections: usize,
        /// Requests accepted per section per cycle.
        ports: usize,
    },
}

/// A per-bank cache in front of the DRAM array (paper §7 points to
/// the Tera's bank caches and Hsu & Smith \[HS93\]): the most recently
/// accessed `lines` addresses of a bank are served in `hit_delay`
/// cycles instead of the full bank delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankCache {
    /// Cached addresses per bank (LRU replacement).
    pub lines: usize,
    /// Service time for a cache hit, in cycles (≤ bank delay).
    pub hit_delay: u64,
}

/// Which event-queue implementation drives the discrete-event loop.
///
/// Both schedulers realize the same total order on events —
/// `(time, kind, proc, seq)` — so simulation results are bit-identical;
/// the choice only affects speed. The heap is kept as the
/// differential-testing oracle for the wheel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Hierarchical bucketed time wheel: `O(1)` push, amortized `O(1)`
    /// pop for the near-sorted event streams the simulator produces.
    #[default]
    Wheel,
    /// Binary min-heap: `O(log n)` per operation, the original
    /// implementation.
    Heap,
}

/// Vector strip-mining: a Cray-style processor issues memory requests
/// through vector registers of `vector_length` elements; finishing a
/// strip costs `startup` extra cycles before the next strip begins
/// (instruction issue + vector startup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripMining {
    /// Elements per vector register (64 on the Crays).
    pub vector_length: usize,
    /// Extra cycles between strips.
    pub startup: u64,
}

/// Full configuration of a simulated machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Processor count `p`.
    pub procs: usize,
    /// Bank count `B` (so the expansion factor is `B / p`).
    pub banks: usize,
    /// Bank delay model: cycles a bank is busy per access, uniform or
    /// per-bank, plus optional processor↔bank distances.
    pub delay: BankDelayModel,
    /// Issue gap `g`: cycles between requests from one processor.
    pub issue_gap: u64,
    /// One-way processor↔bank transit latency in cycles.
    pub latency: u64,
    /// Maximum outstanding requests per processor (`None` = unbounded,
    /// i.e. perfect latency hiding, the vector-pipeline assumption).
    pub window: Option<usize>,
    /// Interconnect model.
    pub network: NetworkModel,
    /// Synchronization overhead charged per superstep boundary when
    /// running multi-superstep traces (the model's `L`).
    pub sync_overhead: u64,
    /// Optional per-bank cache (the §7 extension; `None` = plain banks).
    pub bank_cache: Option<BankCache>,
    /// Optional vector strip-mining (`None` = perfectly pipelined issue).
    pub strip: Option<StripMining>,
    /// Record a per-request event log in the result (timing of every
    /// request through the pipeline). Off by default: the log costs
    /// memory proportional to the request count.
    pub record_events: bool,
    /// Event-queue implementation (time wheel by default; results are
    /// identical either way).
    pub scheduler: SchedulerKind,
    /// Execution mode: full event-level simulation (default), or
    /// hybrid, where supersteps the classifier proves cheap are
    /// charged closed-form (see [`dxbsp_core::classify`]).
    #[serde(default)]
    pub exec: ExecMode,
    /// Which engine runs the simulated supersteps: bulk bank-epoch
    /// advancement (default; bit-identical, falls back to events when
    /// a feature it cannot model is on) or the per-request event-level
    /// oracle.
    #[serde(default)]
    pub engine: EngineKind,
}

impl SimConfig {
    /// A baseline configuration: uniform network, unit issue gap, zero
    /// latency, unbounded window, no sync overhead.
    ///
    /// # Panics
    ///
    /// Panics if `procs`, `banks` or `bank_delay` is zero.
    #[must_use]
    pub fn new(procs: usize, banks: usize, bank_delay: u64) -> Self {
        assert!(procs >= 1, "need at least one processor");
        assert!(banks >= 1, "need at least one bank");
        assert!(bank_delay >= 1, "bank delay must be at least one cycle");
        Self {
            procs,
            banks,
            delay: BankDelayModel::uniform(bank_delay),
            issue_gap: 1,
            latency: 0,
            window: None,
            network: NetworkModel::Uniform,
            sync_overhead: 0,
            bank_cache: None,
            strip: None,
            record_events: false,
            scheduler: SchedulerKind::default(),
            exec: ExecMode::Full,
            engine: EngineKind::default(),
        }
    }

    /// Builds the simulator configuration corresponding to a set of
    /// (d,x)-BSP model parameters.
    #[must_use]
    pub fn from_params(m: &MachineParams) -> Self {
        let mut cfg = Self::new(m.p, m.banks(), m.d);
        cfg.issue_gap = m.g;
        cfg.sync_overhead = m.l;
        cfg
    }

    /// The (d,x)-BSP parameters this configuration realizes (expansion
    /// rounds down if `banks` is not a multiple of `procs`). Under a
    /// non-uniform delay model the scalar `d` is the uniform summary
    /// (the worst bank's delay), which is what a modeler who ignores
    /// heterogeneity would plug in.
    #[must_use]
    pub fn params(&self) -> MachineParams {
        MachineParams::new(
            self.procs,
            self.issue_gap,
            self.sync_overhead,
            self.delay.uniform_summary(),
            (self.banks / self.procs).max(1),
        )
    }

    /// The scalar bank delay when the model is uniform across banks,
    /// else the uniform summary (the worst bank's delay, clamped ≥ 1).
    #[must_use]
    pub fn bank_delay(&self) -> u64 {
        self.delay.uniform_summary()
    }

    /// Installs a bank delay model.
    ///
    /// # Panics
    ///
    /// Panics if the model does not validate against this machine's
    /// processor and bank counts (wrong vector length, all-zero
    /// delays, mis-shaped distance matrix).
    #[must_use]
    pub fn with_delay_model(mut self, delay: BankDelayModel) -> Self {
        delay.validate(self.procs, self.banks).expect("delay model must fit the machine");
        self.delay = delay;
        self
    }

    /// Sets the issue gap.
    #[must_use]
    pub fn with_issue_gap(mut self, g: u64) -> Self {
        assert!(g >= 1, "issue gap must be at least one cycle");
        self.issue_gap = g;
        self
    }

    /// Sets the one-way transit latency.
    #[must_use]
    pub fn with_latency(mut self, latency: u64) -> Self {
        self.latency = latency;
        self
    }

    /// Bounds the per-processor outstanding-request window.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "window must allow at least one outstanding request");
        self.window = Some(window);
        self
    }

    /// Installs a sectioned network.
    ///
    /// # Panics
    ///
    /// Panics if `sections` does not divide the bank count or `ports`
    /// is zero.
    #[must_use]
    pub fn with_sections(mut self, sections: usize, ports: usize) -> Self {
        assert!(sections >= 1 && self.banks % sections == 0, "sections must divide banks");
        assert!(ports >= 1, "each section needs at least one port");
        self.network = NetworkModel::Sectioned { sections, ports };
        self
    }

    /// Sets the per-superstep synchronization overhead.
    #[must_use]
    pub fn with_sync_overhead(mut self, l: u64) -> Self {
        self.sync_overhead = l;
        self
    }

    /// Installs a per-bank cache of `lines` addresses with hit service
    /// time `hit_delay`.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0`, `hit_delay == 0`, or `hit_delay` exceeds
    /// the bank delay (a cache that is slower than the bank is not a
    /// cache).
    #[must_use]
    pub fn with_bank_cache(mut self, lines: usize, hit_delay: u64) -> Self {
        assert!(lines >= 1, "cache needs at least one line");
        assert!(hit_delay >= 1, "hits take at least one cycle");
        assert!(hit_delay <= self.delay.min_service(), "hits must not be slower than any bank");
        self.bank_cache = Some(BankCache { lines, hit_delay });
        self
    }

    /// Enables vector strip-mining: `startup` extra cycles after every
    /// `vector_length` issued requests.
    ///
    /// # Panics
    ///
    /// Panics if `vector_length == 0`.
    #[must_use]
    pub fn with_strip_mining(mut self, vector_length: usize, startup: u64) -> Self {
        assert!(vector_length >= 1, "vector length must be positive");
        self.strip = Some(StripMining { vector_length, startup });
        self
    }

    /// Enables the per-request event log.
    #[must_use]
    pub fn with_event_log(mut self) -> Self {
        self.record_events = true;
        self
    }

    /// Selects the event-queue implementation. Results are bit-identical
    /// across schedulers; this exists for differential testing and for
    /// benchmarking one against the other.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the execution mode.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the engine that runs simulated supersteps.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Whether the bank-epoch engine applies: it must be selected, and
    /// the machine must be free of the features whose events genuinely
    /// interleave across requests — issue windows, sectioned ports,
    /// bank caches, strip-mining, and processor↔bank distance models
    /// (per-pair transit breaks the issue-order-equals-arrival-order
    /// invariant the bulk walk relies on; plain per-bank delays do
    /// not, since the prefix recurrence already runs per bank). When
    /// any of those is on the simulator punts, explicitly, to the
    /// event-level loop (the realized engine is
    /// [`Self::engine_in_force`]).
    #[must_use]
    pub fn epoch_applies(&self) -> bool {
        self.engine == EngineKind::BankEpoch
            && self.network == NetworkModel::Uniform
            && self.window.is_none()
            && self.strip.is_none()
            && self.bank_cache.is_none()
            && !self.delay.has_distance()
    }

    /// The engine that actually runs simulated supersteps once the
    /// punt rules are applied: [`EngineKind::BankEpoch`] only when
    /// [`Self::epoch_applies`], else [`EngineKind::EventLevel`].
    #[must_use]
    pub fn engine_in_force(&self) -> EngineKind {
        if self.epoch_applies() {
            EngineKind::BankEpoch
        } else {
            EngineKind::EventLevel
        }
    }

    /// Whether the hybrid fast path may run under this configuration:
    /// hybrid mode is on *and* the machine is "simple" — uniform
    /// network, unbounded window, no strip-mining, no bank cache, no
    /// event log. Any feature the closed forms do not model forces
    /// every superstep through the event-level simulator.
    #[must_use]
    pub fn hybrid_eligible(&self) -> bool {
        self.exec.is_hybrid()
            && self.network == NetworkModel::Uniform
            && self.window.is_none()
            && self.strip.is_none()
            && self.bank_cache.is_none()
            && !self.record_events
    }

    /// Banks per section (the whole machine is one section under
    /// [`NetworkModel::Uniform`]).
    #[must_use]
    pub fn banks_per_section(&self) -> usize {
        match self.network {
            NetworkModel::Uniform => self.banks,
            NetworkModel::Sectioned { sections, .. } => self.banks / sections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_params_round_trips() {
        let m = MachineParams::new(8, 2, 5, 14, 32);
        let cfg = SimConfig::from_params(&m);
        assert_eq!(cfg.procs, 8);
        assert_eq!(cfg.banks, 256);
        assert_eq!(cfg.bank_delay(), 14);
        assert_eq!(cfg.delay, BankDelayModel::uniform(14));
        assert_eq!(cfg.issue_gap, 2);
        assert_eq!(cfg.sync_overhead, 5);
        assert_eq!(cfg.params(), m);
    }

    #[test]
    fn builders_compose() {
        let cfg = SimConfig::new(4, 64, 6)
            .with_issue_gap(2)
            .with_latency(10)
            .with_window(8)
            .with_sections(4, 2)
            .with_sync_overhead(100);
        assert_eq!(cfg.issue_gap, 2);
        assert_eq!(cfg.latency, 10);
        assert_eq!(cfg.window, Some(8));
        assert_eq!(cfg.network, NetworkModel::Sectioned { sections: 4, ports: 2 });
        assert_eq!(cfg.banks_per_section(), 16);
        assert_eq!(cfg.sync_overhead, 100);
    }

    #[test]
    fn scheduler_defaults_to_wheel() {
        let cfg = SimConfig::new(4, 64, 6);
        assert_eq!(cfg.scheduler, SchedulerKind::Wheel);
        let cfg = cfg.with_scheduler(SchedulerKind::Heap);
        assert_eq!(cfg.scheduler, SchedulerKind::Heap);
    }

    #[test]
    #[should_panic(expected = "divide banks")]
    fn sections_must_divide_banks() {
        let _ = SimConfig::new(4, 64, 6).with_sections(3, 1);
    }

    #[test]
    fn uniform_network_is_one_section() {
        let cfg = SimConfig::new(4, 64, 6);
        assert_eq!(cfg.banks_per_section(), 64);
    }

    #[test]
    fn per_bank_delay_keeps_the_epoch_engine_distance_punts() {
        use dxbsp_core::ProcBankDistance;
        let mixed = SimConfig::new(4, 8, 6)
            .with_delay_model(BankDelayModel::per_bank(vec![6, 6, 6, 6, 14, 14, 14, 14]));
        assert!(mixed.epoch_applies());
        assert_eq!(mixed.bank_delay(), 14); // uniform summary = worst bank
        assert_eq!(mixed.params().d, 14);

        let distance = SimConfig::new(4, 8, 6).with_delay_model(BankDelayModel::Distance {
            base: vec![6; 8],
            matrix: ProcBankDistance::new(4, 8, vec![1; 32]).unwrap(),
        });
        assert!(!distance.epoch_applies());
        assert_eq!(distance.engine_in_force(), EngineKind::EventLevel);
    }

    #[test]
    #[should_panic(expected = "fit the machine")]
    fn delay_model_must_match_bank_count() {
        let _ = SimConfig::new(4, 8, 6).with_delay_model(BankDelayModel::per_bank(vec![6, 14]));
    }
}
