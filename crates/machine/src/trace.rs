//! Multi-superstep traces.
//!
//! Algorithms execute as a *sequence* of supersteps separated by
//! barriers. A [`Trace`] is that sequence of access patterns (plus
//! optional per-step local work); running it sums the simulated time of
//! each superstep, the declared local work, and the configured
//! synchronization overhead per barrier — mirroring how the (d,x)-BSP
//! charges a whole algorithm.

use serde::{Deserialize, Serialize};

use dxbsp_core::{AccessPattern, BankMap, CostModel, MachineParams};

use crate::engine::{replay, ModelBackend, SimulatorBackend};
use crate::sim::Simulator;
use crate::stats::SimResult;

/// One superstep of a trace: memory traffic plus local computation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// The memory requests of this superstep.
    pub pattern: AccessPattern,
    /// Additional local-computation cycles charged to this superstep
    /// (the maximum over processors, as the BSP charges it).
    pub local_work: u64,
    /// Optional label for reporting (e.g. the algorithm phase name).
    pub label: String,
}

impl TraceStep {
    /// A pure-memory superstep.
    #[must_use]
    pub fn new(pattern: AccessPattern) -> Self {
        Self { pattern, local_work: 0, label: String::new() }
    }

    /// Attaches a phase label.
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Adds local-computation cycles.
    #[must_use]
    pub fn with_local_work(mut self, cycles: u64) -> Self {
        self.local_work = cycles;
        self
    }

    /// Empties the step for refilling — pattern cleared (allocations
    /// kept), local work zeroed, label truncated. The recycling hook of
    /// the streaming pipeline.
    pub fn recycle(&mut self) {
        self.pattern.clear();
        self.local_work = 0;
        self.label.clear();
    }

    /// Overwrites this step with a copy of `other`, reusing this step's
    /// allocations where they suffice.
    pub fn copy_from(&mut self, other: &TraceStep) {
        self.pattern.copy_from(&other.pattern);
        self.local_work = other.local_work;
        self.label.clear();
        self.label.push_str(&other.label);
    }
}

/// A sequence of supersteps.
pub type Trace = Vec<TraceStep>;

/// Result of simulating a whole trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceResult {
    /// Total cycles: per-step memory time + local work + one
    /// `sync_overhead` per superstep.
    pub total_cycles: u64,
    /// Total memory requests across the trace.
    pub total_requests: usize,
    /// Per-superstep simulation results, in order.
    pub steps: Vec<SimResult>,
    /// Per-superstep labels (parallel to `steps`).
    pub labels: Vec<String>,
}

impl TraceResult {
    /// Cycles attributable to memory (excluding local work and sync).
    #[must_use]
    pub fn memory_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.cycles).sum()
    }

    /// The single most expensive superstep (index, cycles).
    #[must_use]
    pub fn hottest_step(&self) -> Option<(usize, u64)> {
        self.steps.iter().enumerate().max_by_key(|(_, s)| s.cycles).map(|(i, s)| (i, s.cycles))
    }
}

/// Runs every superstep of `trace` on `sim`, charging `sync_overhead`
/// per superstep boundary. A thin wrapper over the generic
/// [`replay`] with a [`SimulatorBackend`]; callers replaying many
/// traces should hold a backend (or [`crate::engine::Session`])
/// themselves to reuse its working state.
#[must_use]
pub fn run_trace<M: BankMap>(sim: &Simulator, trace: &Trace, map: &M) -> TraceResult {
    replay(&mut SimulatorBackend::new(sim.config().clone()), trace, &map)
}

/// Charges a whole trace under a cost model: the sum over supersteps
/// of the pattern charge, the declared local work, and one `L` per
/// superstep — the analytic counterpart of [`run_trace`], used to put
/// "predicted" next to "measured" in the experiment tables. A thin
/// wrapper over the generic [`replay`] with a [`ModelBackend`].
#[must_use]
pub fn charge_trace<M: BankMap>(
    m: &MachineParams,
    trace: &Trace,
    map: &M,
    model: CostModel,
) -> u64 {
    replay(&mut ModelBackend::new(*m, model), trace, &map).total_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use dxbsp_core::Interleaved;

    #[test]
    fn trace_sums_steps_and_overheads() {
        let cfg = SimConfig::new(1, 4, 6).with_sync_overhead(100);
        let sim = Simulator::new(cfg);
        let map = Interleaved::new(4);
        let step = |n: usize| TraceStep::new(AccessPattern::scatter(1, &vec![0u64; n]));
        let trace = vec![step(1).with_local_work(50), step(2)];
        let res = run_trace(&sim, &trace, &map);
        // Step 1: 6 cycles memory + 50 local + 100 sync.
        // Step 2: 12 cycles memory + 100 sync.
        assert_eq!(res.total_cycles, 6 + 50 + 100 + 12 + 100);
        assert_eq!(res.total_requests, 3);
        assert_eq!(res.memory_cycles(), 18);
        assert_eq!(res.hottest_step(), Some((1, 12)));
    }

    #[test]
    fn labels_travel_with_steps() {
        let sim = Simulator::new(SimConfig::new(1, 4, 6));
        let map = Interleaved::new(4);
        let trace = vec![
            TraceStep::new(AccessPattern::scatter(1, &[0])).labeled("hook"),
            TraceStep::new(AccessPattern::scatter(1, &[1])).labeled("shortcut"),
        ];
        let res = run_trace(&sim, &trace, &map);
        assert_eq!(res.labels, vec!["hook".to_string(), "shortcut".to_string()]);
    }

    #[test]
    fn charge_trace_matches_manual_sum() {
        use dxbsp_core::{CostModel, MachineParams};
        let m = MachineParams::new(1, 1, 7, 6, 4);
        let map = Interleaved::new(4);
        let trace = vec![
            TraceStep::new(AccessPattern::scatter(1, &[0u64; 5])).with_local_work(3),
            TraceStep::new(AccessPattern::scatter(1, &[1, 2, 3])),
        ];
        let charged = charge_trace(&m, &trace, &map, CostModel::DxBsp);
        // Step 1: d·5 = 30 bank-bound, +3 local, +7 L. Step 2: three
        // distinct banks → max(L, g·3, d·1) = 7, +7 L.
        assert_eq!(charged, 30 + 3 + 7 + 7 + 7);
        // And the simulator agrees within pipelining slack on step 2.
        let sim = Simulator::new(crate::config::SimConfig::from_params(&m));
        let res = run_trace(&sim, &trace, &map);
        assert!(res.total_cycles >= charged - 10);
    }

    #[test]
    fn empty_trace_is_free() {
        let sim = Simulator::new(SimConfig::new(1, 4, 6).with_sync_overhead(9));
        let res = run_trace(&sim, &Vec::new(), &Interleaved::new(4));
        assert_eq!(res.total_cycles, 0);
        assert_eq!(res.hottest_step(), None);
    }
}
