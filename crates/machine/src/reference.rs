//! A deliberately naive cycle-stepped reference simulator.
//!
//! The production simulator (`sim.rs`) resolves each request's pipeline
//! inline with a few heap operations. This module re-implements the
//! same semantics the slow, obvious way — advance one cycle at a time,
//! move requests between explicit queues — and exists purely to
//! differential-test the fast path: on any input where both run, they
//! must agree on the cycle count and per-bank request totals exactly.
//!
//! Semantics mirrored:
//! * each processor issues at most one request per `issue_gap` cycles,
//!   subject to its outstanding-request window;
//! * requests take `latency` cycles to reach their section, wait for a
//!   section port (`ports` admitted per section per cycle, FIFO), then
//!   queue FIFO at their bank;
//! * a bank starts one request when free and holds it `bank_delay`
//!   cycles; the reply takes `latency` cycles back.
//!
//! The run ends when the last reply arrives.

use std::collections::VecDeque;

use dxbsp_core::{AccessPattern, BankMap};

use crate::config::{NetworkModel, SimConfig};

/// Result of a reference run: enough to compare against
/// [`crate::SimResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceResult {
    /// Cycles from first issue to last reply.
    pub cycles: u64,
    /// Requests serviced per bank.
    pub bank_requests: Vec<usize>,
}

/// Runs `pat` under `cfg` one cycle at a time.
///
/// This is O(cycles × (procs + banks)) — test-sized inputs only.
///
/// # Panics
///
/// Panics on processor/bank count mismatches, like the fast simulator.
#[must_use]
pub fn run_reference<M: BankMap>(cfg: &SimConfig, pat: &AccessPattern, map: &M) -> ReferenceResult {
    assert_eq!(pat.procs(), cfg.procs, "pattern/processor-count mismatch");
    assert_eq!(map.num_banks(), cfg.banks, "map/bank-count mismatch");
    assert!(cfg.bank_cache.is_none(), "the reference simulator does not model bank caches");
    assert!(
        !cfg.delay.has_distance(),
        "the reference simulator does not model distance delays; \
         differential-test those via wheel vs heap instead"
    );
    assert!(
        cfg.delay.min_service() >= 1,
        "the cycle-stepped reference serves one request per bank per cycle; \
         zero-delay banks need the event engines"
    );

    let (sections, ports) = match cfg.network {
        NetworkModel::Uniform => (1usize, usize::MAX),
        NetworkModel::Sectioned { sections, ports } => (sections, ports),
    };
    let banks_per_section = cfg.banks / sections;

    // Per-processor streams of bank indices.
    let streams: Vec<VecDeque<usize>> = pat
        .per_processor()
        .into_iter()
        .map(|reqs| reqs.into_iter().map(|r| map.bank_of(r.addr)).collect())
        .collect();
    let total: usize = streams.iter().map(VecDeque::len).sum();
    if total == 0 {
        return ReferenceResult { cycles: 0, bank_requests: vec![0; cfg.banks] };
    }

    let mut streams = streams;
    let mut next_issue_ok = vec![0u64; cfg.procs]; // earliest next issue cycle
    let mut issued_count = vec![0usize; cfg.procs];
    let mut outstanding = vec![0usize; cfg.procs];
    // In-flight request transit to the section: (arrive_cycle, proc, bank).
    let mut to_section: VecDeque<(u64, usize, usize)> = VecDeque::new();
    // FIFO waiting at each section for a port.
    let mut section_q: Vec<VecDeque<(usize, usize)>> = vec![VecDeque::new(); sections];
    // FIFO waiting at each bank.
    let mut bank_q: Vec<VecDeque<usize>> = vec![VecDeque::new(); cfg.banks];
    // Bank busy until cycle (exclusive).
    let mut bank_busy_until = vec![0u64; cfg.banks];
    // Replies in flight: (arrive_cycle, proc).
    let mut replies: VecDeque<(u64, usize)> = VecDeque::new();
    let mut bank_requests = vec![0usize; cfg.banks];

    let mut done = 0usize;
    let mut cycle = 0u64;
    let mut last_reply = 0u64;
    let window = cfg.window.unwrap_or(usize::MAX);

    while done < total {
        // 1. Replies arriving this cycle free window slots.
        while let Some(&(t, p)) = replies.front() {
            if t > cycle {
                break;
            }
            replies.pop_front();
            outstanding[p] -= 1;
            done += 1;
            last_reply = last_reply.max(t);
        }

        // 2. Issue: every processor that may, does (in index order, as
        //    the fast simulator's same-cycle seq ordering does).
        for p in 0..cfg.procs {
            if streams[p].is_empty() || cycle < next_issue_ok[p] || outstanding[p] >= window {
                continue;
            }
            let bank = streams[p].pop_front().expect("nonempty");
            outstanding[p] += 1;
            issued_count[p] += 1;
            next_issue_ok[p] = cycle + cfg.issue_gap;
            if let Some(strip) = cfg.strip {
                if issued_count[p] % strip.vector_length == 0 {
                    next_issue_ok[p] += strip.startup;
                }
            }
            to_section.push_back((cycle + cfg.latency, p, bank));
        }

        // 3. Transit arrivals join their section queue.
        while let Some(&(t, p, bank)) = to_section.front() {
            if t > cycle {
                break;
            }
            to_section.pop_front();
            section_q[bank / banks_per_section].push_back((p, bank));
        }

        // 4. Each section admits up to `ports` waiting requests into
        //    their bank queues.
        for q in &mut section_q {
            for _ in 0..ports.min(q.len()) {
                let (p, bank) = q.pop_front().expect("nonempty");
                bank_q[bank].push_back(p);
            }
        }

        // 5. Free banks start the next queued request, each holding
        //    its own bank's service time.
        for b in 0..cfg.banks {
            if bank_busy_until[b] <= cycle {
                if let Some(p) = bank_q[b].pop_front() {
                    let d = cfg.delay.service(b);
                    bank_busy_until[b] = cycle + d;
                    bank_requests[b] += 1;
                    replies.push_back((cycle + d + cfg.latency, p));
                }
            }
        }
        // Replies queue is time-ordered only if bank completions are;
        // different banks can finish out of order, so keep it sorted.
        replies.make_contiguous().sort_unstable();

        cycle += 1;
    }

    ReferenceResult { cycles: last_reply, bank_requests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxbsp_core::Interleaved;

    #[test]
    fn single_request_takes_d() {
        let cfg = SimConfig::new(1, 4, 6);
        let pat = AccessPattern::scatter(1, &[0]);
        let r = run_reference(&cfg, &pat, &Interleaved::new(4));
        assert_eq!(r.cycles, 6);
        assert_eq!(r.bank_requests, vec![1, 0, 0, 0]);
    }

    #[test]
    fn hammer_serializes() {
        let cfg = SimConfig::new(1, 4, 6);
        let pat = AccessPattern::scatter(1, &[0u64; 10]);
        let r = run_reference(&cfg, &pat, &Interleaved::new(4));
        assert_eq!(r.cycles, 60);
    }

    #[test]
    fn empty_pattern_is_free() {
        let cfg = SimConfig::new(2, 8, 3);
        let r = run_reference(&cfg, &AccessPattern::new(2), &Interleaved::new(8));
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn window_one_round_trips() {
        let cfg = SimConfig::new(1, 16, 6).with_latency(5).with_window(1);
        let addrs: Vec<u64> = (0..4).collect();
        let pat = AccessPattern::scatter(1, &addrs);
        let r = run_reference(&cfg, &pat, &Interleaved::new(16));
        assert_eq!(r.cycles, 4 * 16);
    }
}
