//! Binary serialization of traces.
//!
//! The paper's Figure 1 replays "a set of memory access patterns
//! extracted from a trace" of a real program. This module provides the
//! trace file: a compact binary encoding of a [`Trace`] so captured
//! access patterns can be stored, shipped, and replayed byte-for-byte
//! (`repro fig1` works from a live run; downstream users can work from
//! files).
//!
//! Format (little-endian):
//!
//! ```text
//! magic "DXTR" | version u32 | step count u32
//! per step: procs u32 | local_work u64 | label len u16 | label utf-8
//!           request count u32 | requests: (proc u32, addr u64, kind u8)
//! ```

use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dxbsp_core::{AccessKind, AccessPattern, Request};

use crate::stream::SuperstepSource;
use crate::trace::{Trace, TraceStep};

/// Magic bytes identifying a trace file.
pub const MAGIC: &[u8; 4] = b"DXTR";
/// Current format version.
pub const VERSION: u32 = 1;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// The buffer is shorter than its headers promise.
    Truncated,
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// A step's label is not valid UTF-8.
    BadLabel,
    /// A request's kind byte is neither read (0) nor write (1).
    BadKind(u8),
    /// A step declares zero processors.
    BadProcs,
    /// An in-memory trace too big for the format's u32/u16 length
    /// fields (the field that overflowed is named).
    TooLarge(&'static str),
    /// An underlying I/O failure while streaming (carried as a message
    /// so the error stays comparable).
    Io(String),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Truncated => write!(f, "trace file truncated"),
            TraceFileError::BadMagic => write!(f, "not a dxbsp trace file (bad magic)"),
            TraceFileError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceFileError::BadLabel => write!(f, "step label is not valid UTF-8"),
            TraceFileError::BadKind(k) => write!(f, "invalid request kind byte {k}"),
            TraceFileError::BadProcs => write!(f, "step declares zero processors"),
            TraceFileError::TooLarge(what) => {
                write!(f, "trace too large for the format: {what} overflows its length field")
            }
            TraceFileError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<TraceFileError> for dxbsp_core::DxError {
    fn from(e: TraceFileError) -> Self {
        match e {
            TraceFileError::Io(msg) => dxbsp_core::DxError::Io(std::io::Error::other(msg)),
            other => dxbsp_core::DxError::invalid(format!("trace file: {other}")),
        }
    }
}

impl From<TraceFileError> for std::io::Error {
    fn from(e: TraceFileError) -> Self {
        match e {
            TraceFileError::Io(msg) => std::io::Error::other(msg),
            TraceFileError::Truncated => {
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, e.to_string())
            }
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Encodes a trace.
///
/// # Errors
///
/// [`TraceFileError::TooLarge`] if a count or label length overflows
/// its fixed-width field.
pub fn encode_trace(trace: &Trace) -> Result<Bytes, TraceFileError> {
    let mut buf = BytesMut::with_capacity(
        16 + trace.iter().map(|s| 32 + s.label.len() + 13 * s.pattern.len()).sum::<usize>(),
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(fit_u32(trace.len(), "trace step count")?);
    for step in trace {
        encode_step(&mut buf, step)?;
    }
    Ok(buf.freeze())
}

fn fit_u32(v: usize, what: &'static str) -> Result<u32, TraceFileError> {
    u32::try_from(v).map_err(|_| TraceFileError::TooLarge(what))
}

/// Appends one step's encoding to `buf` (the per-step body shared by
/// [`encode_trace`] and [`TraceFileWriter`]).
fn encode_step(buf: &mut BytesMut, step: &TraceStep) -> Result<(), TraceFileError> {
    buf.put_u32_le(fit_u32(step.pattern.procs(), "processor count")?);
    buf.put_u64_le(step.local_work);
    let label_len =
        u16::try_from(step.label.len()).map_err(|_| TraceFileError::TooLarge("step label"))?;
    buf.put_u16_le(label_len);
    buf.put_slice(step.label.as_bytes());
    buf.put_u32_le(fit_u32(step.pattern.len(), "request count")?);
    for r in step.pattern.requests() {
        buf.put_u32_le(fit_u32(r.proc, "processor index")?);
        buf.put_u64_le(r.addr);
        buf.put_u8(match r.kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
    }
    Ok(())
}

/// Decodes a trace.
///
/// # Errors
///
/// Returns a [`TraceFileError`] on any malformed input; never panics on
/// untrusted bytes.
pub fn decode_trace(mut buf: &[u8]) -> Result<Trace, TraceFileError> {
    fn need(buf: &[u8], n: usize) -> Result<(), TraceFileError> {
        if buf.remaining() < n {
            Err(TraceFileError::Truncated)
        } else {
            Ok(())
        }
    }

    need(buf, 8)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TraceFileError::BadVersion(version));
    }
    need(buf, 4)?;
    let steps = buf.get_u32_le() as usize;

    let mut trace = Vec::with_capacity(steps.min(1 << 20));
    for _ in 0..steps {
        need(buf, 14)?;
        let procs = buf.get_u32_le() as usize;
        if procs == 0 {
            return Err(TraceFileError::BadProcs);
        }
        let local_work = buf.get_u64_le();
        let label_len = buf.get_u16_le() as usize;
        need(buf, label_len)?;
        let label = std::str::from_utf8(&buf[..label_len])
            .map_err(|_| TraceFileError::BadLabel)?
            .to_string();
        buf.advance(label_len);
        need(buf, 4)?;
        let requests = buf.get_u32_le() as usize;
        let mut pattern = AccessPattern::with_capacity(procs, requests.min(1 << 24));
        for _ in 0..requests {
            need(buf, 13)?;
            let proc = buf.get_u32_le() as usize;
            let addr = buf.get_u64_le();
            let kind = buf.get_u8();
            let req = match kind {
                0 => Request::read(proc % procs, addr),
                1 => Request::write(proc % procs, addr),
                other => return Err(TraceFileError::BadKind(other)),
            };
            pattern.push(req);
        }
        trace.push(TraceStep { pattern, local_work, label });
    }
    Ok(trace)
}

/// Writes a trace to a file.
///
/// # Errors
///
/// Propagates I/O errors; an unencodable trace surfaces as
/// [`std::io::ErrorKind::InvalidData`].
pub fn save_trace(path: &std::path::Path, trace: &Trace) -> std::io::Result<()> {
    std::fs::write(path, encode_trace(trace)?)
}

/// Reads a trace from a file.
///
/// # Errors
///
/// Propagates I/O errors; decoding failures surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn load_trace(path: &std::path::Path) -> std::io::Result<Trace> {
    let bytes = std::fs::read(path)?;
    decode_trace(&bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Maps a streaming-read failure onto the decode error vocabulary: a
/// clean end-of-file mid-structure is a truncation, anything else is a
/// transport failure.
fn io_to_trace_error(e: &std::io::Error) -> TraceFileError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        TraceFileError::Truncated
    } else {
        TraceFileError::Io(e.to_string())
    }
}

fn read_exact_or<R: Read>(inner: &mut R, buf: &mut [u8]) -> Result<(), TraceFileError> {
    inner.read_exact(buf).map_err(|e| io_to_trace_error(&e))
}

/// Little-endian field reads from an in-bounds slice offset — written
/// index-by-index so no `try_into().expect` lands in the decode path.
fn u16_at(b: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([b[off], b[off + 1]])
}

fn u32_at(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

fn u64_at(b: &[u8], off: usize) -> u64 {
    let mut le = [0u8; 8];
    le.copy_from_slice(&b[off..off + 8]);
    u64::from_le_bytes(le)
}

/// Requests decoded per batch while streaming a step — bounds the
/// reader's scratch buffer (13 bytes each) no matter what request count
/// a (possibly hostile) header declares.
const READ_BATCH: usize = 1 << 16;

/// Streams a trace file step by step, never holding more than one
/// superstep (plus a bounded scratch buffer) in memory — the
/// [`SuperstepSource`] the replay tools use so multi-gigabyte traces
/// replay in O(one superstep) space.
///
/// Decoding and I/O failures are stashed ([`TraceFileReader::error`])
/// when driven through the infallible [`SuperstepSource`] seam; callers
/// check after the stream ends. The explicit
/// [`read_step`](TraceFileReader::read_step) API surfaces them
/// directly.
#[derive(Debug)]
pub struct TraceFileReader<R: Read> {
    inner: R,
    declared: usize,
    remaining: usize,
    buf: Vec<u8>,
    error: Option<TraceFileError>,
}

impl TraceFileReader<BufReader<std::fs::File>> {
    /// Opens `path` and validates the file header.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::Io`] if the file cannot be opened, plus any
    /// header validation failure from [`TraceFileReader::new`].
    pub fn open(path: &std::path::Path) -> Result<Self, TraceFileError> {
        let file = std::fs::File::open(path).map_err(|e| TraceFileError::Io(e.to_string()))?;
        Self::new(BufReader::new(file))
    }
}

impl<R: Read> TraceFileReader<R> {
    /// Wraps a byte stream, reading and validating the file header.
    ///
    /// # Errors
    ///
    /// Any [`TraceFileError`] the header bytes earn.
    pub fn new(mut inner: R) -> Result<Self, TraceFileError> {
        let mut header = [0u8; 12];
        read_exact_or(&mut inner, &mut header)?;
        if &header[0..4] != MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let version = u32_at(&header, 4);
        if version != VERSION {
            return Err(TraceFileError::BadVersion(version));
        }
        let declared = u32_at(&header, 8) as usize;
        Ok(Self { inner, declared, remaining: declared, buf: Vec::new(), error: None })
    }

    /// The step count the file header declares.
    #[must_use]
    pub fn declared_steps(&self) -> usize {
        self.declared
    }

    /// The first error hit while streaming through the
    /// [`SuperstepSource`] seam, if any. A stream that ends with
    /// `error().is_none()` delivered every declared step intact.
    #[must_use]
    pub fn error(&self) -> Option<&TraceFileError> {
        self.error.as_ref()
    }

    /// Reads the next step into `step` (reusing its buffers). Returns
    /// `Ok(false)` at the clean end of the trace.
    ///
    /// # Errors
    ///
    /// Any [`TraceFileError`]; [`TraceFileError::Truncated`] when the
    /// file ends mid-step.
    pub fn read_step(&mut self, step: &mut TraceStep) -> Result<bool, TraceFileError> {
        if self.remaining == 0 {
            return Ok(false);
        }
        let mut header = [0u8; 14];
        read_exact_or(&mut self.inner, &mut header)?;
        let procs = u32_at(&header, 0) as usize;
        if procs == 0 {
            return Err(TraceFileError::BadProcs);
        }
        step.local_work = u64_at(&header, 4);
        let label_len = u16_at(&header, 12) as usize;
        self.buf.resize(label_len, 0);
        read_exact_or(&mut self.inner, &mut self.buf)?;
        let label = std::str::from_utf8(&self.buf).map_err(|_| TraceFileError::BadLabel)?;
        step.label.clear();
        step.label.push_str(label);

        let mut count = [0u8; 4];
        read_exact_or(&mut self.inner, &mut count)?;
        let mut requests = u32::from_le_bytes(count) as usize;
        step.pattern.reset(procs);
        while requests > 0 {
            let batch = requests.min(READ_BATCH);
            self.buf.resize(13 * batch, 0);
            read_exact_or(&mut self.inner, &mut self.buf)?;
            for rec in self.buf.chunks_exact(13) {
                let proc = u32_at(rec, 0) as usize;
                let addr = u64_at(rec, 4);
                match rec[12] {
                    0 => step.pattern.push_read(proc % procs, addr),
                    1 => step.pattern.push_write(proc % procs, addr),
                    other => return Err(TraceFileError::BadKind(other)),
                }
            }
            requests -= batch;
        }
        self.remaining -= 1;
        Ok(true)
    }
}

impl<R: Read> SuperstepSource for TraceFileReader<R> {
    fn fill_next(&mut self, step: &mut TraceStep) -> bool {
        if self.error.is_some() {
            return false;
        }
        match self.read_step(step) {
            Ok(more) => more,
            Err(e) => {
                self.error = Some(e);
                false
            }
        }
    }
}

/// Writes a trace file step by step, so producers can stream captures
/// to disk without materializing the trace. The header's step count is
/// back-patched on [`finish`](TraceFileWriter::finish) (the output must
/// therefore be seekable).
#[derive(Debug)]
pub struct TraceFileWriter<W: Write + Seek> {
    inner: W,
    steps: u32,
    buf: BytesMut,
}

impl TraceFileWriter<BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and writes the file header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Self::new(BufWriter::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Seek> TraceFileWriter<W> {
    /// Wraps a seekable byte sink and writes the file header (with a
    /// zero step count, patched on finish).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn new(mut inner: W) -> std::io::Result<Self> {
        inner.write_all(MAGIC)?;
        inner.write_all(&VERSION.to_le_bytes())?;
        inner.write_all(&0u32.to_le_bytes())?;
        Ok(Self { inner, steps: 0, buf: BytesMut::new() })
    }

    /// Steps written so far.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps as usize
    }

    /// Appends one step.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; an unencodable step (or a trace past
    /// `u32::MAX` steps) surfaces as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn write_step(&mut self, step: &TraceStep) -> std::io::Result<()> {
        self.buf.clear();
        encode_step(&mut self.buf, step)?;
        let steps =
            self.steps.checked_add(1).ok_or(TraceFileError::TooLarge("trace step count"))?;
        self.inner.write_all(&self.buf)?;
        self.steps = steps;
        Ok(())
    }

    /// Patches the header's step count, flushes, and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.inner.seek(SeekFrom::Start(8))?;
        self.inner.write_all(&self.steps.to_le_bytes())?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut p1 = AccessPattern::new(4);
        p1.push(Request::read(0, 100));
        p1.push(Request::write(3, 200));
        let p2 = AccessPattern::scatter(4, &[1, 1, 2]);
        vec![
            TraceStep { pattern: p1, local_work: 42, label: "hook".into() },
            TraceStep { pattern: p2, local_work: 0, label: "scatter-φ".into() },
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample_trace();
        let bytes = encode_trace(&trace).expect("encode");
        let back = decode_trace(&bytes).expect("decode");
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode_trace(&Vec::new()).expect("encode");
        assert_eq!(decode_trace(&bytes).expect("decode"), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_trace(&sample_trace()).expect("encode").to_vec();
        bytes[0] = b'X';
        assert_eq!(decode_trace(&bytes), Err(TraceFileError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_trace(&sample_trace()).expect("encode").to_vec();
        bytes[4] = 99;
        assert_eq!(decode_trace(&bytes), Err(TraceFileError::BadVersion(99)));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode_trace(&sample_trace()).expect("encode");
        for cut in 0..bytes.len() {
            let r = decode_trace(&bytes[..cut]);
            assert!(r.is_err(), "decode succeeded on a {cut}-byte prefix");
        }
    }

    #[test]
    fn bad_kind_rejected() {
        let bytes = encode_trace(&sample_trace()).expect("encode").to_vec();
        // Last byte of the stream is the final request's kind.
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() = 7;
        assert_eq!(decode_trace(&bad), Err(TraceFileError::BadKind(7)));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dxbsp-tracefile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.dxtr");
        let trace = sample_trace();
        save_trace(&path, &trace).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_reader_matches_bulk_decode() {
        let trace = sample_trace();
        let bytes = encode_trace(&trace).expect("encode");
        let mut reader = TraceFileReader::new(&bytes[..]).expect("header");
        assert_eq!(reader.declared_steps(), 2);
        let mut step = TraceStep::default();
        let mut streamed = Vec::new();
        while reader.read_step(&mut step).expect("step") {
            streamed.push(step.clone());
        }
        assert_eq!(streamed, trace);
        assert!(reader.error().is_none());
    }

    #[test]
    fn streaming_reader_stashes_truncation() {
        use crate::stream::SuperstepSource;
        let bytes = encode_trace(&sample_trace()).expect("encode");
        let cut = &bytes[..bytes.len() - 3];
        let mut reader = TraceFileReader::new(cut).expect("header survives");
        let mut step = TraceStep::default();
        let mut delivered = 0;
        while reader.fill_next(&mut step) {
            delivered += 1;
        }
        assert_eq!(delivered, 1, "only the intact step streams");
        assert_eq!(reader.error(), Some(&TraceFileError::Truncated));
    }

    #[test]
    fn streaming_writer_round_trips_through_both_decoders() {
        let trace = sample_trace();
        let mut writer =
            TraceFileWriter::new(std::io::Cursor::new(Vec::new())).expect("header write");
        for step in &trace {
            writer.write_step(step).expect("step write");
        }
        assert_eq!(writer.steps(), 2);
        let bytes = writer.finish().expect("finish").into_inner();
        assert_eq!(
            bytes,
            encode_trace(&trace).expect("encode").to_vec(),
            "byte-identical to bulk encode"
        );
        assert_eq!(decode_trace(&bytes).expect("decode"), trace);
    }

    #[test]
    fn file_streams_through_run_stream_like_a_replay() {
        use crate::engine::{replay, Session, SimulatorBackend};
        use crate::{SimConfig, TraceFileReader};
        use dxbsp_core::Interleaved;
        let dir = std::env::temp_dir().join("dxbsp-tracefile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streamed.dxtr");
        let trace = sample_trace();
        save_trace(&path, &trace).unwrap();

        let cfg = SimConfig::new(4, 8, 6).with_sync_overhead(2);
        let map = Interleaved::new(8);
        let oracle = replay(&mut SimulatorBackend::new(cfg.clone()), &trace, &map);

        let mut reader = TraceFileReader::open(&path).unwrap();
        let mut session = Session::new(SimulatorBackend::new(cfg));
        let summary = session.run_stream(&mut reader, &map);
        assert!(reader.error().is_none());
        assert_eq!(summary.cycles, oracle.total_cycles);
        assert_eq!(summary.requests, oracle.total_requests);
        assert_eq!(summary.supersteps, trace.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_of_decoded_trace_costs_the_same() {
        use crate::{run_trace, SimConfig, Simulator};
        use dxbsp_core::Interleaved;
        let trace = sample_trace();
        let bytes = encode_trace(&trace).expect("encode");
        let back = decode_trace(&bytes).unwrap();
        let sim = Simulator::new(SimConfig::new(4, 8, 6));
        let map = Interleaved::new(8);
        assert_eq!(
            run_trace(&sim, &trace, &map).total_cycles,
            run_trace(&sim, &back, &map).total_cycles
        );
    }
}
