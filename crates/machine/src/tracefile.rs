//! Binary serialization of traces.
//!
//! The paper's Figure 1 replays "a set of memory access patterns
//! extracted from a trace" of a real program. This module provides the
//! trace file: a compact binary encoding of a [`Trace`] so captured
//! access patterns can be stored, shipped, and replayed byte-for-byte
//! (`repro fig1` works from a live run; downstream users can work from
//! files).
//!
//! Format (little-endian):
//!
//! ```text
//! magic "DXTR" | version u32 | step count u32
//! per step: procs u32 | local_work u64 | label len u16 | label utf-8
//!           request count u32 | requests: (proc u32, addr u64, kind u8)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dxbsp_core::{AccessKind, AccessPattern, Request};

use crate::trace::{Trace, TraceStep};

/// Magic bytes identifying a trace file.
pub const MAGIC: &[u8; 4] = b"DXTR";
/// Current format version.
pub const VERSION: u32 = 1;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// The buffer is shorter than its headers promise.
    Truncated,
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// A step's label is not valid UTF-8.
    BadLabel,
    /// A request's kind byte is neither read (0) nor write (1).
    BadKind(u8),
    /// A step declares zero processors.
    BadProcs,
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Truncated => write!(f, "trace file truncated"),
            TraceFileError::BadMagic => write!(f, "not a dxbsp trace file (bad magic)"),
            TraceFileError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceFileError::BadLabel => write!(f, "step label is not valid UTF-8"),
            TraceFileError::BadKind(k) => write!(f, "invalid request kind byte {k}"),
            TraceFileError::BadProcs => write!(f, "step declares zero processors"),
        }
    }
}

impl std::error::Error for TraceFileError {}

/// Encodes a trace.
#[must_use]
pub fn encode_trace(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        16 + trace.iter().map(|s| 32 + s.label.len() + 13 * s.pattern.len()).sum::<usize>(),
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(u32::try_from(trace.len()).expect("trace step count fits u32"));
    for step in trace {
        buf.put_u32_le(u32::try_from(step.pattern.procs()).expect("procs fits u32"));
        buf.put_u64_le(step.local_work);
        buf.put_u16_le(u16::try_from(step.label.len()).expect("label fits u16"));
        buf.put_slice(step.label.as_bytes());
        buf.put_u32_le(u32::try_from(step.pattern.len()).expect("request count fits u32"));
        for r in step.pattern.requests() {
            buf.put_u32_le(u32::try_from(r.proc).expect("proc fits u32"));
            buf.put_u64_le(r.addr);
            buf.put_u8(match r.kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
            });
        }
    }
    buf.freeze()
}

/// Decodes a trace.
///
/// # Errors
///
/// Returns a [`TraceFileError`] on any malformed input; never panics on
/// untrusted bytes.
pub fn decode_trace(mut buf: &[u8]) -> Result<Trace, TraceFileError> {
    fn need(buf: &[u8], n: usize) -> Result<(), TraceFileError> {
        if buf.remaining() < n {
            Err(TraceFileError::Truncated)
        } else {
            Ok(())
        }
    }

    need(buf, 8)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceFileError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TraceFileError::BadVersion(version));
    }
    need(buf, 4)?;
    let steps = buf.get_u32_le() as usize;

    let mut trace = Vec::with_capacity(steps.min(1 << 20));
    for _ in 0..steps {
        need(buf, 14)?;
        let procs = buf.get_u32_le() as usize;
        if procs == 0 {
            return Err(TraceFileError::BadProcs);
        }
        let local_work = buf.get_u64_le();
        let label_len = buf.get_u16_le() as usize;
        need(buf, label_len)?;
        let label = std::str::from_utf8(&buf[..label_len])
            .map_err(|_| TraceFileError::BadLabel)?
            .to_string();
        buf.advance(label_len);
        need(buf, 4)?;
        let requests = buf.get_u32_le() as usize;
        let mut pattern = AccessPattern::with_capacity(procs, requests.min(1 << 24));
        for _ in 0..requests {
            need(buf, 13)?;
            let proc = buf.get_u32_le() as usize;
            let addr = buf.get_u64_le();
            let kind = buf.get_u8();
            let req = match kind {
                0 => Request::read(proc % procs, addr),
                1 => Request::write(proc % procs, addr),
                other => return Err(TraceFileError::BadKind(other)),
            };
            pattern.push(req);
        }
        trace.push(TraceStep { pattern, local_work, label });
    }
    Ok(trace)
}

/// Writes a trace to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_trace(path: &std::path::Path, trace: &Trace) -> std::io::Result<()> {
    std::fs::write(path, encode_trace(trace))
}

/// Reads a trace from a file.
///
/// # Errors
///
/// Propagates I/O errors; decoding failures surface as
/// [`std::io::ErrorKind::InvalidData`].
pub fn load_trace(path: &std::path::Path) -> std::io::Result<Trace> {
    let bytes = std::fs::read(path)?;
    decode_trace(&bytes)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut p1 = AccessPattern::new(4);
        p1.push(Request::read(0, 100));
        p1.push(Request::write(3, 200));
        let p2 = AccessPattern::scatter(4, &[1, 1, 2]);
        vec![
            TraceStep { pattern: p1, local_work: 42, label: "hook".into() },
            TraceStep { pattern: p2, local_work: 0, label: "scatter-φ".into() },
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample_trace();
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).expect("decode");
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode_trace(&Vec::new());
        assert_eq!(decode_trace(&bytes).expect("decode"), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_trace(&sample_trace()).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode_trace(&bytes), Err(TraceFileError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_trace(&sample_trace()).to_vec();
        bytes[4] = 99;
        assert_eq!(decode_trace(&bytes), Err(TraceFileError::BadVersion(99)));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode_trace(&sample_trace());
        for cut in 0..bytes.len() {
            let r = decode_trace(&bytes[..cut]);
            assert!(r.is_err(), "decode succeeded on a {cut}-byte prefix");
        }
    }

    #[test]
    fn bad_kind_rejected() {
        let bytes = encode_trace(&sample_trace()).to_vec();
        // Last byte of the stream is the final request's kind.
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() = 7;
        assert_eq!(decode_trace(&bad), Err(TraceFileError::BadKind(7)));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dxbsp-tracefile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.dxtr");
        let trace = sample_trace();
        save_trace(&path, &trace).unwrap();
        let back = load_trace(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_of_decoded_trace_costs_the_same() {
        use crate::{run_trace, SimConfig, Simulator};
        use dxbsp_core::Interleaved;
        let trace = sample_trace();
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).unwrap();
        let sim = Simulator::new(SimConfig::new(4, 8, 6));
        let map = Interleaved::new(8);
        assert_eq!(
            run_trace(&sim, &trace, &map).total_cycles,
            run_trace(&sim, &back, &map).total_cycles
        );
    }
}
