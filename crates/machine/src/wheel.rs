//! Hierarchical bucketed time wheel (calendar queue) for the
//! discrete-event loop.
//!
//! The simulator's event queue is almost always near-sorted: events are
//! scheduled a bounded distance into the future (issue gap, bank
//! service, round-trip latency), and the loop pops in nondecreasing
//! time order. A binary heap pays `O(log n)` per operation for fully
//! general reordering it never needs; this wheel pays `O(1)` per push
//! and amortized `O(1)` per pop by bucketing events on their cycle
//! time.
//!
//! Since the bank-epoch engine landed ([`EngineKind::BankEpoch`], the
//! default), the event loop — and with it this wheel — runs only for
//! the configurations that genuinely interleave: issue windows,
//! strip-mining, bank caches, non-uniform networks
//! (`SimConfig::epoch_applies` is false), or an explicit
//! [`EngineKind::EventLevel`], which the differential proptests use as
//! the oracle the epoch engine must match bit for bit.
//!
//! [`EngineKind::BankEpoch`]: dxbsp_core::EngineKind::BankEpoch
//! [`EngineKind::EventLevel`]: dxbsp_core::EngineKind::EventLevel
//!
//! # Structure
//!
//! Eleven levels of 64 slots each cover all 64 bits of a cycle count
//! (6 bits per level; the top level holds the residual 4 bits). An
//! entry `(time, key)` lives at the level of the highest bit in which
//! `time` differs from the wheel's current time `now`, in the slot
//! given by `time`'s 6-bit block at that level:
//!
//! * level 0 buckets exact times — every entry in a level-0 slot is due
//!   at the same cycle;
//! * level `l ≥ 1` slots each span `64^l` cycles and are cascaded down
//!   one level when `now` reaches them.
//!
//! # Ordering contract
//!
//! [`TimeWheel::pop`] returns entries in exactly nondecreasing
//! `(time, key)` order — bit-identical to a min-heap on the same
//! pairs. Equal-time entries live in one level-0 slot and are
//! disambiguated by a linear minimum-key scan there, so the caller's
//! packed key (event kind, processor, sequence number) fully determines
//! same-cycle arbitration. Advancing skips empty regions in `O(levels)`
//! by jumping straight to the lowest occupied slot, so sparse
//! far-future events (e.g. a reply after a huge backlog) cost no
//! per-cycle stepping.
//!
//! Pushes must not be scheduled in the past (`time >= now`); the
//! discrete-event loop only ever schedules at or after the cycle it is
//! processing.

const BITS: usize = 6;
const SLOTS: usize = 1 << BITS; // 64
const LEVELS: usize = 11; // ceil(64 / 6)

#[derive(Debug, Clone)]
struct Level {
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
    slots: [Vec<(u64, u64)>; SLOTS],
}

impl Default for Level {
    fn default() -> Self {
        Level { occupied: 0, slots: std::array::from_fn(|_| Vec::new()) }
    }
}

/// A hierarchical time wheel over `(time, key)` entries. See the
/// module docs for the ordering contract.
#[derive(Debug, Clone, Default)]
pub(crate) struct TimeWheel {
    /// Lower bound on every queued entry's time; the time of the most
    /// recent pop.
    now: u64,
    len: usize,
    levels: Vec<Level>, // LEVELS entries, lazily allocated
    /// Upper-level slot drains performed (each re-buckets one slot's
    /// entries a level down) — the wheel's only amortized cost, and
    /// the scheduler-health number telemetry probes surface.
    cascades: u64,
}

impl TimeWheel {
    /// Empties the wheel and rewinds it to cycle 0, keeping slot
    /// allocations for reuse.
    pub(crate) fn reset(&mut self) {
        if self.levels.is_empty() {
            self.levels.resize_with(LEVELS, Level::default);
        }
        for level in &mut self.levels {
            let mut occ = level.occupied;
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                level.slots[s].clear();
            }
            level.occupied = 0;
        }
        self.now = 0;
        self.len = 0;
        self.cascades = 0;
    }

    /// Cascade operations since the last reset.
    pub(crate) fn cascades(&self) -> u64 {
        self.cascades
    }

    /// The level holding a time that differs from `now` at bit position
    /// `63 - leading_zeros`.
    #[inline]
    fn level_for(now: u64, time: u64) -> usize {
        let diff = now ^ time;
        if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros() as usize) / BITS
        }
    }

    /// Queues `key` at `time`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `time` is in the past.
    #[inline]
    pub(crate) fn push(&mut self, time: u64, key: u64) {
        debug_assert!(time >= self.now, "push into the past: {time} < {}", self.now);
        let l = Self::level_for(self.now, time);
        let s = (time >> (BITS * l)) as usize & (SLOTS - 1);
        let level = &mut self.levels[l];
        level.occupied |= 1 << s;
        level.slots[s].push((time, key));
        self.len += 1;
    }

    /// Removes and returns the minimum `(time, key)` entry.
    pub(crate) fn pop(&mut self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Level 0: slots at or after the cursor hold entries of the
            // current 64-cycle window, in exact-time buckets.
            let cursor0 = (self.now as usize) & (SLOTS - 1);
            let ready = self.levels[0].occupied & (u64::MAX << cursor0);
            if ready != 0 {
                let s = ready.trailing_zeros() as usize;
                let slot = &mut self.levels[0].slots[s];
                // All entries here share one time; pick the least key.
                let mut best = 0;
                for i in 1..slot.len() {
                    if slot[i].1 < slot[best].1 {
                        best = i;
                    }
                }
                let entry = slot.swap_remove(best);
                if slot.is_empty() {
                    self.levels[0].occupied &= !(1 << s);
                }
                self.len -= 1;
                debug_assert_eq!(entry.0, (self.now & !(SLOTS as u64 - 1)) | s as u64);
                self.now = entry.0;
                return Some(entry);
            }

            // Nothing left in the current window: jump to the lowest
            // occupied level (its candidate time is provably minimal)
            // and cascade that slot down.
            let l = (1..LEVELS)
                .find(|&l| self.levels[l].occupied != 0)
                .expect("len > 0 but no occupied slot");
            let s = self.levels[l].occupied.trailing_zeros() as usize;
            let shift = BITS * (l + 1);
            let high = if shift >= 64 { 0 } else { self.now & (u64::MAX << shift) };
            self.now = high | ((s as u64) << (BITS * l));
            let drained = std::mem::take(&mut self.levels[l].slots[s]);
            self.levels[l].occupied &= !(1 << s);
            self.len -= drained.len();
            self.cascades += 1;
            for (t, k) in drained {
                debug_assert!(Self::level_for(self.now, t) < l);
                self.push(t, k);
            }
        }
    }

    /// Number of queued entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn fresh() -> TimeWheel {
        let mut w = TimeWheel::default();
        w.reset();
        w
    }

    #[test]
    fn pops_in_time_then_key_order() {
        let mut w = fresh();
        w.push(5, 2);
        w.push(5, 1);
        w.push(3, 9);
        w.push(70, 0);
        w.push(5, 0);
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(order, [(3, 9), (5, 0), (5, 1), (5, 2), (70, 0)]);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn skips_huge_gaps_without_stepping() {
        let mut w = fresh();
        w.push(0, 1);
        assert_eq!(w.pop(), Some((0, 1)));
        w.push(u64::MAX - 1, 7);
        w.push(1 << 40, 3);
        assert_eq!(w.pop(), Some((1 << 40, 3)));
        assert_eq!(w.pop(), Some((u64::MAX - 1, 7)));
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        // Deterministic pseudo-random workload mirroring the event
        // loop: pops interleaved with pushes at now + small delta, with
        // occasional far-future jumps.
        let mut w = fresh();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        let mut seq = 0u64;
        for round in 0..20_000 {
            let spawn = round < 10_000;
            if spawn {
                let delta = match rng() % 10 {
                    0 => rng() % (1 << 20),
                    1..=3 => 0,
                    _ => rng() % 64,
                };
                let t = now + delta;
                w.push(t, seq);
                heap.push(Reverse((t, seq)));
                seq += 1;
            }
            if !spawn || rng() % 2 == 0 {
                let expect = heap.pop().map(|Reverse(e)| e);
                let got = w.pop();
                assert_eq!(got, expect, "round {round}");
                if let Some((t, _)) = got {
                    now = t;
                }
            }
        }
        while let Some(Reverse(e)) = heap.pop() {
            assert_eq!(w.pop(), Some(e));
        }
        assert_eq!(w.pop(), None);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn cascades_counted_and_reset() {
        let mut w = fresh();
        assert_eq!(w.cascades(), 0);
        // An entry one level up forces exactly one cascade to pop.
        w.push(70, 1);
        assert_eq!(w.pop(), Some((70, 1)));
        assert!(w.cascades() >= 1);
        w.reset();
        assert_eq!(w.cascades(), 0);
    }

    #[test]
    fn reset_rewinds_and_keeps_capacity() {
        let mut w = fresh();
        w.push(1000, 1);
        w.push(2000, 2);
        w.reset();
        assert_eq!(w.len(), 0);
        assert_eq!(w.pop(), None);
        // After reset, time 0 pushes are valid again.
        w.push(0, 5);
        assert_eq!(w.pop(), Some((0, 5)));
    }

    #[test]
    fn equal_time_buckets_scan_min_key() {
        let mut w = fresh();
        for key in (0..100u64).rev() {
            w.push(42, key);
        }
        for key in 0..100u64 {
            assert_eq!(w.pop(), Some((42, key)));
        }
    }
}
