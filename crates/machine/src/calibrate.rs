//! Model-parameter calibration against the simulated machine.
//!
//! The paper fits its model parameters (`g`, `d`, `L`) to each Cray by
//! timing micro-patterns; Table 2 of the reproduction reports the same
//! fit against the simulator. Calibration runs two single-processor
//! micro-patterns:
//!
//! * a **hammer** — `n` requests to one address — whose asymptotic
//!   cycles/request is the bank delay `d`;
//! * a **unit stride** — `n` requests to `n` distinct banks — whose
//!   asymptotic cycles/request is the issue gap `g` (on a balanced
//!   machine).
//!
//! A correct simulator calibrates back to its own configuration; the
//! round-trip is asserted in tests and reported in Table 2.

use serde::{Deserialize, Serialize};

use dxbsp_core::{AccessPattern, Interleaved};

use crate::sim::Simulator;

/// Fitted model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Fitted bank delay (cycles/request on the hammer pattern).
    pub d: f64,
    /// Fitted gap (cycles/request on the conflict-free pattern).
    pub g: f64,
    /// Configured synchronization overhead (not fitted; reported).
    pub l: u64,
}

/// Fits `d` and `g` by timing micro-patterns of `n` requests.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn calibrate(sim: &Simulator, n: usize) -> Calibration {
    assert!(n > 0, "calibration needs at least one request");
    let cfg = sim.config();
    let map = Interleaved::new(cfg.banks);

    // Hammer: n requests to address 0 from processor 0.
    let mut hammer = AccessPattern::new(cfg.procs);
    for _ in 0..n {
        hammer.push(dxbsp_core::Request::write(0, 0));
    }
    let d = sim.run(&hammer, &map).cycles as f64 / n as f64;

    // Unit stride: n requests to consecutive addresses (distinct banks
    // when n ≤ B; beyond that the pattern wraps but stays even).
    let mut stride = AccessPattern::new(cfg.procs);
    for i in 0..n {
        stride.push(dxbsp_core::Request::write(0, i as u64));
    }
    let g = sim.run(&stride, &map).cycles as f64 / n as f64;

    Calibration { d, g, l: cfg.sync_overhead }
}

/// One fitted delay tier of a (possibly non-uniform) machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierCalibration {
    /// Configured service delay of the tier.
    pub d: u64,
    /// Banks in the tier (0 means "all" — the uniform case).
    pub banks: usize,
    /// Fitted delay: asymptotic cycles/request hammering one bank of
    /// the tier.
    pub fitted: f64,
}

/// Fits each delay tier separately by hammering one representative
/// bank per tier — the per-tier generalization of [`calibrate`]'s `d`
/// fit. A uniform machine yields a single tier; the C90/J90 fused
/// machine yields one row per tier (`d = 6` and `d = 14`).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn calibrate_tiers(sim: &Simulator, n: usize) -> Vec<TierCalibration> {
    assert!(n > 0, "calibration needs at least one request");
    let cfg = sim.config();
    let map = Interleaved::new(cfg.banks);
    cfg.delay
        .tiers()
        .into_iter()
        .map(|(d, banks)| {
            // Interleaved maps address b to bank b, so hammering the
            // tier's first bank times that tier's service delay.
            let bank = (0..cfg.banks).find(|&b| cfg.delay.service(b) == d).unwrap_or(0);
            let mut hammer = AccessPattern::new(cfg.procs);
            for _ in 0..n {
                hammer.push(dxbsp_core::Request::write(0, bank as u64));
            }
            let fitted = sim.run(&hammer, &map).cycles as f64 / n as f64;
            TierCalibration { d, banks, fitted }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn calibration_recovers_configuration() {
        let cfg = SimConfig::new(8, 256, 14).with_sync_overhead(64);
        let cal = calibrate(&Simulator::new(cfg), 4096);
        assert!((cal.d - 14.0).abs() < 0.1, "fitted d = {}", cal.d);
        assert!((cal.g - 1.0).abs() < 0.1, "fitted g = {}", cal.g);
        assert_eq!(cal.l, 64);
    }

    #[test]
    fn calibration_sees_slower_issue() {
        let cfg = SimConfig::new(4, 1024, 6).with_issue_gap(3);
        let cal = calibrate(&Simulator::new(cfg), 1024);
        assert!((cal.g - 3.0).abs() < 0.1, "fitted g = {}", cal.g);
        assert!((cal.d - 6.0).abs() < 0.1, "fitted d = {}", cal.d);
    }

    #[test]
    fn underbanked_machine_fits_memory_gap() {
        // With x < d the stride pattern cycles all banks but each bank
        // must recover: 16 banks, d=8, one proc at g=1 still sees g≈1
        // per element because 16 banks > 8-cycle recovery covers it.
        let cfg = SimConfig::new(1, 16, 8);
        let cal = calibrate(&Simulator::new(cfg), 2048);
        assert!(cal.g < 1.2, "fitted g = {}", cal.g);
    }

    #[test]
    fn tier_calibration_recovers_each_tier() {
        use dxbsp_core::BankDelayModel;
        let cfg = SimConfig::new(8, 256, 14)
            .with_delay_model(BankDelayModel::from_tiers(&[(128, 6), (128, 14)]));
        let tiers = calibrate_tiers(&Simulator::new(cfg), 4096);
        assert_eq!(tiers.len(), 2);
        assert_eq!((tiers[0].d, tiers[0].banks), (6, 128));
        assert_eq!((tiers[1].d, tiers[1].banks), (14, 128));
        assert!((tiers[0].fitted - 6.0).abs() < 0.1, "fitted {}", tiers[0].fitted);
        assert!((tiers[1].fitted - 14.0).abs() < 0.1, "fitted {}", tiers[1].fitted);
    }

    #[test]
    fn tier_calibration_of_a_uniform_machine_is_one_tier() {
        let cfg = SimConfig::new(4, 64, 6);
        let tiers = calibrate_tiers(&Simulator::new(cfg), 1024);
        assert_eq!(tiers.len(), 1);
        assert_eq!(tiers[0].d, 6);
        assert!((tiers[0].fitted - 6.0).abs() < 0.1, "fitted {}", tiers[0].fitted);
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_requests_rejected() {
        let cfg = SimConfig::new(1, 4, 2);
        let _ = calibrate(&Simulator::new(cfg), 0);
    }
}
