//! # dxbsp-machine — a simulated high-bandwidth multiprocessor
//!
//! The paper validates the (d,x)-BSP model against measured scatter and
//! gather times on Cray C90 and J90 hardware. This crate is the
//! reproduction's stand-in for that hardware: a cycle-level
//! discrete-event simulator of the three mechanisms that drive the
//! paper's measured curves:
//!
//! 1. **Bank recovery time** — each of the `B` memory banks is busy for
//!    `d` cycles per access and queues excess requests FIFO;
//! 2. **Pipelined processors** — each of the `p` processors issues one
//!    request every `g` cycles (vectorized issue), with an optionally
//!    bounded window of outstanding requests (latency hiding);
//! 3. **Sectioned network** — banks are grouped into sections with a
//!    bounded per-cycle injection rate, reproducing the J90 subsection
//!    congestion the paper observes in its version-(c) experiment.
//!
//! The simulator is deterministic: a given request stream and
//! configuration always produces the same cycle count, so every
//! experiment in `dxbsp-bench` is reproducible from its RNG seed.
//!
//! ## Quick example
//!
//! ```
//! use dxbsp_core::{AccessPattern, Interleaved};
//! use dxbsp_machine::{SimConfig, Simulator};
//!
//! // A J90-like machine: 8 processors, 256 banks, bank delay 14.
//! let cfg = SimConfig::new(8, 256, 14);
//! let sim = Simulator::new(cfg);
//!
//! // Everyone hammers one address: the hot bank serializes.
//! let pat = AccessPattern::scatter(8, &vec![0u64; 64]);
//! let res = sim.run(&pat, &Interleaved::new(256));
//! assert!(res.cycles >= 14 * 64); // d·k lower bound
//! ```

pub mod calibrate;
pub mod config;
pub mod reference;
pub mod sim;
pub mod stats;
pub mod trace;
pub mod tracefile;

pub use calibrate::{calibrate, Calibration};
pub use config::{NetworkModel, SimConfig};
pub use reference::{run_reference, ReferenceResult};
pub use sim::Simulator;
pub use stats::{BankStats, LoadSummary, ProcStats, RequestEvent, SimResult};
pub use trace::{charge_trace, run_trace, Trace, TraceResult, TraceStep};
pub use tracefile::{decode_trace, encode_trace, load_trace, save_trace, TraceFileError};
