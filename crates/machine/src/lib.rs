//! # dxbsp-machine — a simulated high-bandwidth multiprocessor
//!
//! The paper validates the (d,x)-BSP model against measured scatter and
//! gather times on Cray C90 and J90 hardware. This crate is the
//! reproduction's stand-in for that hardware: a cycle-level
//! discrete-event simulator of the three mechanisms that drive the
//! paper's measured curves:
//!
//! 1. **Bank recovery time** — each of the `B` memory banks is busy for
//!    `d` cycles per access and queues excess requests FIFO;
//! 2. **Pipelined processors** — each of the `p` processors issues one
//!    request every `g` cycles (vectorized issue), with an optionally
//!    bounded window of outstanding requests (latency hiding);
//! 3. **Sectioned network** — banks are grouped into sections with a
//!    bounded per-cycle injection rate, reproducing the J90 subsection
//!    congestion the paper observes in its version-(c) experiment.
//!
//! The simulator is deterministic: a given request stream and
//! configuration always produces the same cycle count, so every
//! experiment in `dxbsp-bench` is reproducible from its RNG seed.
//!
//! All execution flows through the [`engine`] layer: a [`Backend`]
//! trait with three machines — the event-driven [`Simulator`]
//! ([`SimulatorBackend`]), the naive cycle-stepped reference
//! ([`ReferenceBackend`]), and the closed-form cost model
//! ([`ModelBackend`]) — plus a [`Session`] that reuses per-run state
//! across supersteps and accumulates statistics. Supersteps *stream*
//! through that seam ([`stream`]): a session pulls them one at a time
//! from any [`SuperstepSource`] — a trace file read off disk, a
//! generator on another thread — executing each as it arrives, so peak
//! memory is O(one superstep) however long the program runs.
//!
//! ## Quick example
//!
//! ```
//! use dxbsp_core::{AccessPattern, CostModel, Interleaved, MachineParams};
//! use dxbsp_machine::{Backend, ModelBackend, Session, SimulatorBackend};
//!
//! // A J90-like machine: 8 processors, bank delay 14, expansion 32.
//! let m = MachineParams::new(8, 1, 0, 14, 32);
//! let map = Interleaved::new(m.banks());
//!
//! // Everyone hammers one address: the hot bank serializes.
//! let pat = AccessPattern::scatter(8, &vec![0u64; 64]);
//!
//! // Measured cycles from the simulator, predicted from the model —
//! // both through the same engine seam.
//! let mut hardware = Session::new(SimulatorBackend::from_params(&m));
//! let mut model = ModelBackend::new(m, CostModel::DxBsp);
//! let measured = hardware.step(&pat, &map).cycles;
//! let predicted = model.step(&pat, &map).cycles;
//! assert_eq!(predicted, 14 * 64); // the d·k serialization charge
//! assert!(measured >= predicted);
//! ```
//!
//! ## Streaming supersteps
//!
//! [`Session::run_stream`] executes a whole stream without ever
//! materializing it; here the source is a stored trace, but a
//! [`TraceFileReader`] (steps straight off disk) or a [`ChannelSource`]
//! (generation overlapped on another thread, see [`run_overlapped`])
//! plugs into the same seam:
//!
//! ```
//! use dxbsp_core::Interleaved;
//! use dxbsp_machine::{Session, SimConfig, SimulatorBackend, TraceSource, TraceStep};
//! use dxbsp_core::AccessPattern;
//!
//! let cfg = SimConfig::new(8, 256, 14);
//! let map = Interleaved::new(256);
//! let trace = vec![TraceStep::new(AccessPattern::scatter(8, &vec![3u64; 32]))];
//!
//! let mut session = Session::new(SimulatorBackend::new(cfg));
//! let summary = session.run_stream(&mut TraceSource::new(&trace), &map);
//! assert_eq!(summary.supersteps, 1);
//! assert_eq!(summary.cycles, 14 * 32);
//! ```

pub mod calibrate;
pub mod config;
pub mod engine;
pub mod reference;
pub mod sessions;
pub mod sim;
pub mod stats;
pub mod stream;
pub mod trace;
pub mod tracefile;
mod wheel;

pub use calibrate::{calibrate, calibrate_tiers, Calibration, TierCalibration};
pub use config::{NetworkModel, SchedulerKind, SimConfig};
pub use dxbsp_core::EngineKind;
pub use engine::{
    replay, Backend, ModelBackend, ReferenceBackend, Session, SimulatorBackend, StepOutcome,
};
pub use reference::{run_reference, ReferenceResult};
pub use sessions::{PoolStats, PooledBackend, SessionPool};
pub use sim::Simulator;
pub use stats::{BankStats, LoadSummary, ProcStats, RequestEvent, SimResult};
pub use stream::{
    run_overlapped, step_channel, ChannelSink, ChannelSource, CollectSink, ProbedSessionSink,
    SessionSink, StepSink, StreamSummary, SuperstepSource, TraceSource,
};
// The probe seam the simulator and engine are instrumented over (the
// full telemetry toolkit — recorder, exporters — lives in
// `dxbsp-telemetry`).
pub use dxbsp_telemetry::{NoopProbe, Probe, RequestTiming, StepReport};
pub use trace::{charge_trace, run_trace, Trace, TraceResult, TraceStep};
pub use tracefile::{
    decode_trace, encode_trace, load_trace, save_trace, TraceFileError, TraceFileReader,
    TraceFileWriter,
};
