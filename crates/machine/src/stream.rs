//! The streaming superstep pipeline: supersteps flow through the
//! engine as they are produced instead of accumulating in a
//! materialized [`Trace`].
//!
//! The paper's machines never hold a whole program's memory traffic at
//! once — each superstep's requests exist only while the banks serve
//! them. This module gives the repository the same shape. Two seams
//! meet in the middle:
//!
//! * a [`SuperstepSource`] is anything the engine can *pull* supersteps
//!   from one at a time ([`Session::run_stream`]): a trace file read
//!   off disk step by step ([`crate::tracefile::TraceFileReader`]), a
//!   materialized trace ([`TraceSource`]), or the consumer end of a
//!   bounded channel ([`ChannelSource`]);
//! * a [`StepSink`] is anything a producer can *push* supersteps into:
//!   a session executing them on the spot ([`SessionSink`]), a
//!   collector materializing them ([`CollectSink`]), a trace-file
//!   writer, or the producer end of a bounded channel ([`ChannelSink`]).
//!
//! Every hand-off recycles buffers: `fill_next` overwrites a
//! caller-owned [`TraceStep`], and `emit` returns a spent step for the
//! producer to refill, so after warm-up no allocation happens at all —
//! peak memory is O(one superstep) regardless of trace length.
//!
//! [`run_overlapped`] connects a producer closure to a session through
//! a bounded channel on a second thread: trace *generation* overlaps
//! trace *execution*, with results bit-identical to the single-threaded
//! run because the consumer steps supersteps in production order.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use dxbsp_core::BankMap;
use dxbsp_telemetry::Probe;

use crate::engine::{Backend, Session};
use crate::trace::{Trace, TraceStep};

/// A pull-based stream of supersteps.
pub trait SuperstepSource {
    /// Overwrites `step` with the next superstep, reusing its buffers,
    /// and returns `true`; returns `false` when the stream is
    /// exhausted (leaving `step` in an unspecified recycled state).
    fn fill_next(&mut self, step: &mut TraceStep) -> bool;
}

/// A push-based consumer of supersteps.
pub trait StepSink {
    /// Consumes one superstep. The returned [`TraceStep`] is a recycled
    /// buffer (typically a previously consumed step) for the producer
    /// to refill — the hand-over-hand exchange that keeps steady-state
    /// allocation at zero.
    fn emit(&mut self, step: TraceStep) -> TraceStep;
}

/// What one streamed run amounted to — the totals accrued by a
/// [`Session::run_stream`] call (also the per-call deltas of the
/// session's cumulative counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Memory requests executed.
    pub requests: usize,
    /// Total cycles: per-step memory time + local work + one
    /// `sync_overhead` per superstep.
    pub cycles: u64,
    /// Cycles attributable to memory alone.
    pub memory_cycles: u64,
}

/// Streams a materialized [`Trace`] — the adapter that lets stored
/// traces ride the same seam as generated ones.
#[derive(Debug)]
pub struct TraceSource<'t> {
    steps: std::slice::Iter<'t, TraceStep>,
}

impl<'t> TraceSource<'t> {
    /// A source yielding `trace`'s steps in order.
    #[must_use]
    pub fn new(trace: &'t Trace) -> Self {
        Self { steps: trace.iter() }
    }
}

impl SuperstepSource for TraceSource<'_> {
    fn fill_next(&mut self, step: &mut TraceStep) -> bool {
        match self.steps.next() {
            Some(s) => {
                step.copy_from(s);
                true
            }
            None => false,
        }
    }
}

/// A sink that executes every step on a [`Session`] the moment it
/// arrives — the push-side twin of [`Session::run_stream`], used by
/// producers (like the algo tracer) that drive the hand-off themselves.
pub struct SessionSink<'a, B: Backend> {
    session: &'a mut Session<B>,
    map: &'a dyn BankMap,
}

impl<B: Backend + std::fmt::Debug> std::fmt::Debug for SessionSink<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionSink").field("session", &self.session).finish_non_exhaustive()
    }
}

impl<'a, B: Backend> SessionSink<'a, B> {
    /// A sink stepping every emitted superstep through `session` under
    /// `map`.
    pub fn new(session: &'a mut Session<B>, map: &'a dyn BankMap) -> Self {
        Self { session, map }
    }

    /// The wrapped session.
    #[must_use]
    pub fn session(&self) -> &Session<B> {
        self.session
    }
}

impl<B: Backend> StepSink for SessionSink<'_, B> {
    fn emit(&mut self, mut step: TraceStep) -> TraceStep {
        self.session.step_with_local(&step.pattern, self.map, step.local_work);
        step.recycle();
        step
    }
}

/// [`SessionSink`] with a live [`Probe`]: every emitted superstep's
/// pipeline events and labelled cost attribution flow into the probe —
/// the push-side twin of [`Session::run_stream_probed`], so producers
/// that drive the hand-off themselves (the algo tracer, the VM) get
/// the same telemetry as pull-side streams.
pub struct ProbedSessionSink<'a, B: Backend, P: Probe> {
    session: &'a mut Session<B>,
    map: &'a dyn BankMap,
    probe: &'a mut P,
}

impl<B: Backend + std::fmt::Debug, P: Probe> std::fmt::Debug for ProbedSessionSink<'_, B, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbedSessionSink").field("session", &self.session).finish_non_exhaustive()
    }
}

impl<'a, B: Backend, P: Probe> ProbedSessionSink<'a, B, P> {
    /// A sink stepping every emitted superstep through `session` under
    /// `map`, reporting to `probe`.
    pub fn new(session: &'a mut Session<B>, map: &'a dyn BankMap, probe: &'a mut P) -> Self {
        Self { session, map, probe }
    }

    /// The wrapped session.
    #[must_use]
    pub fn session(&self) -> &Session<B> {
        self.session
    }
}

impl<B: Backend, P: Probe> StepSink for ProbedSessionSink<'_, B, P> {
    fn emit(&mut self, mut step: TraceStep) -> TraceStep {
        self.session.step_inner(&step.pattern, self.map, step.local_work, &step.label, self.probe);
        step.recycle();
        step
    }
}

/// A sink that materializes the stream into a [`Trace`] — the bridge
/// back from streaming to the stored-trace world (differential oracles,
/// trace capture).
#[derive(Debug, Default)]
pub struct CollectSink {
    steps: Trace,
}

impl CollectSink {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.steps
    }
}

impl StepSink for CollectSink {
    fn emit(&mut self, step: TraceStep) -> TraceStep {
        self.steps.push(step);
        TraceStep::default()
    }
}

/// The producer end of a bounded superstep channel (see
/// [`step_channel`]). Emitting blocks once `depth` steps are in
/// flight, so the producer can run at most `depth` supersteps ahead of
/// the consumer — bounded memory even with an unboundedly fast
/// producer. Dropping the sink ends the stream.
#[derive(Debug)]
pub struct ChannelSink {
    data: SyncSender<TraceStep>,
    free: Receiver<TraceStep>,
}

impl StepSink for ChannelSink {
    fn emit(&mut self, step: TraceStep) -> TraceStep {
        self.data.send(step).expect("superstep consumer hung up");
        // Recycle a spent buffer from the consumer if one has come
        // back; otherwise start a fresh one (only happens while the
        // pipeline warms up).
        self.free.try_recv().unwrap_or_default()
    }
}

/// The consumer end of a bounded superstep channel (see
/// [`step_channel`]): a [`SuperstepSource`] that pulls steps in
/// production order and returns spent buffers to the producer.
#[derive(Debug)]
pub struct ChannelSource {
    data: Receiver<TraceStep>,
    free: SyncSender<TraceStep>,
}

impl SuperstepSource for ChannelSource {
    fn fill_next(&mut self, step: &mut TraceStep) -> bool {
        match self.data.recv() {
            Ok(mut got) => {
                std::mem::swap(step, &mut got);
                got.recycle();
                // Hand the spent buffer back; if the return lane is
                // full (producer far behind on pickups) just drop it.
                let _ = self.free.try_send(got);
                true
            }
            Err(_) => false,
        }
    }
}

/// A bounded producer/consumer channel of supersteps with a buffer
/// return lane: at most `depth` steps are ever in flight, and spent
/// step buffers circulate back to the producer so the steady state
/// allocates nothing.
#[must_use]
pub fn step_channel(depth: usize) -> (ChannelSink, ChannelSource) {
    let depth = depth.max(1);
    let (data_tx, data_rx) = sync_channel(depth);
    // Room for every in-flight buffer plus the endpoints' working
    // copies, so returns are non-blocking in practice.
    let (free_tx, free_rx) = sync_channel(depth + 2);
    (ChannelSink { data: data_tx, free: free_rx }, ChannelSource { data: data_rx, free: free_tx })
}

/// Runs `produce` on a second thread, streaming its supersteps through
/// a bounded channel of `depth` steps into `session` on the calling
/// thread — trace generation overlapped with execution.
///
/// The consumer executes steps strictly in production order, so the
/// session totals are bit-identical to a single-threaded
/// [`Session::run_stream`] over the same stream; only wall-clock time
/// changes. The producer's return value is handed back alongside the
/// run's [`StreamSummary`].
///
/// # Panics
///
/// Panics if the producer thread panics.
pub fn run_overlapped<B, T, F>(
    session: &mut Session<B>,
    map: &dyn BankMap,
    depth: usize,
    produce: F,
) -> (T, StreamSummary)
where
    B: Backend,
    T: Send,
    F: FnOnce(&mut dyn StepSink) -> T + Send,
{
    let (mut sink, mut source) = step_channel(depth);
    std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            let out = produce(&mut sink);
            drop(sink); // closes the channel: the consumer sees the end
            out
        });
        let summary = session.run_stream(&mut source, map);
        (producer.join().expect("superstep producer panicked"), summary)
    })
}

/// Drains any stragglers from a source into a sink (a utility for
/// adapters that bridge the two seams).
pub fn pump(source: &mut dyn SuperstepSource, sink: &mut dyn StepSink) -> usize {
    let mut step = TraceStep::default();
    let mut moved = 0;
    while source.fill_next(&mut step) {
        step = sink.emit(std::mem::take(&mut step));
        moved += 1;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::SimulatorBackend;
    use dxbsp_core::{AccessPattern, Interleaved};

    fn toy_trace(steps: usize) -> Trace {
        (0..steps)
            .map(|i| {
                let pat = AccessPattern::scatter(2, &[i as u64 % 4, 0]);
                TraceStep::new(pat).labeled(format!("s{i}")).with_local_work(i as u64)
            })
            .collect()
    }

    #[test]
    fn trace_source_replays_steps_in_order() {
        let trace = toy_trace(5);
        let mut source = TraceSource::new(&trace);
        let mut step = TraceStep::default();
        let mut seen = Vec::new();
        while source.fill_next(&mut step) {
            seen.push(step.label.clone());
        }
        assert_eq!(seen, vec!["s0", "s1", "s2", "s3", "s4"]);
        assert!(!source.fill_next(&mut step), "exhausted source must stay exhausted");
    }

    #[test]
    fn collect_sink_materializes_the_stream() {
        let trace = toy_trace(4);
        let mut source = TraceSource::new(&trace);
        let mut sink = CollectSink::new();
        assert_eq!(pump(&mut source, &mut sink), 4);
        assert_eq!(sink.into_trace(), trace);
    }

    #[test]
    fn channel_round_trips_and_recycles_buffers() {
        let trace = toy_trace(8);
        let (mut sink, mut source) = step_channel(2);
        let collected = std::thread::scope(|scope| {
            let consumer = scope.spawn(move || {
                let mut out = CollectSink::new();
                let mut step = TraceStep::default();
                while source.fill_next(&mut step) {
                    step = out.emit(std::mem::take(&mut step));
                }
                out.into_trace()
            });
            let mut buf = TraceStep::default();
            for s in &trace {
                buf.copy_from(s);
                buf = sink.emit(std::mem::take(&mut buf));
            }
            drop(sink);
            consumer.join().expect("consumer")
        });
        assert_eq!(collected, trace);
    }

    #[test]
    fn session_sink_matches_run_trace() {
        let cfg = SimConfig::new(2, 8, 6).with_sync_overhead(3);
        let map = Interleaved::new(8);
        let trace = toy_trace(6);

        let mut materialized = Session::new(SimulatorBackend::new(cfg.clone()));
        materialized.run_trace(&trace, &map);

        let mut streamed = Session::new(SimulatorBackend::new(cfg));
        {
            let mut sink = SessionSink::new(&mut streamed, &map);
            let mut source = TraceSource::new(&trace);
            pump(&mut source, &mut sink);
        }
        assert_eq!(streamed.cycles(), materialized.cycles());
        assert_eq!(streamed.requests(), materialized.requests());
        assert_eq!(streamed.bank_totals(), materialized.bank_totals());
        assert_eq!(streamed.proc_totals(), materialized.proc_totals());
    }

    #[test]
    fn overlapped_run_is_bit_identical_to_sequential() {
        let cfg = SimConfig::new(2, 8, 6).with_sync_overhead(5);
        let map = Interleaved::new(8);
        let trace = toy_trace(32);

        let mut sequential = Session::new(SimulatorBackend::new(cfg.clone()));
        let mut source = TraceSource::new(&trace);
        let seq = sequential.run_stream(&mut source, &map);

        let mut overlapped = Session::new(SimulatorBackend::new(cfg));
        let ((), ovl) = run_overlapped(&mut overlapped, &map, 4, |sink| {
            let mut buf = TraceStep::default();
            for s in &trace {
                buf.copy_from(s);
                buf = sink.emit(std::mem::take(&mut buf));
            }
        });
        assert_eq!(seq, ovl);
        assert_eq!(sequential.cycles(), overlapped.cycles());
        assert_eq!(sequential.bank_totals(), overlapped.bank_totals());
        assert_eq!(sequential.proc_totals(), overlapped.proc_totals());
    }

    #[test]
    fn empty_stream_is_free() {
        let cfg = SimConfig::new(2, 8, 6);
        let map = Interleaved::new(8);
        let mut session = Session::new(SimulatorBackend::new(cfg));
        let trace = Trace::new();
        let summary = session.run_stream(&mut TraceSource::new(&trace), &map);
        assert_eq!(summary, StreamSummary::default());
        assert_eq!(session.supersteps(), 0);
    }
}
