//! Differential tests for the telemetry probe seam: instrumenting a
//! run must never change its result. A probed run's `SimResult` is
//! bit-identical to the unprobed run's, under both schedulers, through
//! bare simulator calls and through sessions — and the recorder's own
//! aggregates must agree with the simulator's statistics.

use dxbsp_core::{AccessPattern, EngineKind, Interleaved, Request};
use dxbsp_machine::{SchedulerKind, Session, SimConfig, Simulator, SimulatorBackend};
use dxbsp_telemetry::Recorder;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        1usize..=8,
        1usize..=6,
        1u64..=20,
        1u64..=4,
        0u64..=16,
        prop_oneof![Just(None), (1usize..=8).prop_map(Some)],
        prop_oneof![Just(SchedulerKind::Wheel), Just(SchedulerKind::Heap)],
    )
        .prop_map(|(p, xb, d, g, lat, win, sched)| {
            let mut cfg = SimConfig::new(p, p * xb, d)
                .with_issue_gap(g)
                .with_latency(lat)
                .with_scheduler(sched);
            if let Some(w) = win {
                cfg = cfg.with_window(w);
            }
            cfg
        })
}

fn arb_pattern(max_procs: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0..max_procs, 0u64..256), 0..300)
}

fn build_pattern(procs: usize, raw: &[(usize, u64)]) -> AccessPattern {
    let mut pat = AccessPattern::new(procs);
    for &(p, a) in raw {
        pat.push(Request::write(p % procs, a));
    }
    pat
}

proptest! {
    /// A probed run is bit-identical to an unprobed run, and the
    /// recorder's aggregates agree with the simulator's statistics.
    #[test]
    fn probed_run_is_bit_identical(cfg in arb_config(), raw in arb_pattern(8)) {
        let pat = build_pattern(cfg.procs, &raw);
        let map = Interleaved::new(cfg.banks);
        let sim = Simulator::new(cfg);
        let plain = sim.run(&pat, &map);
        let mut rec = Recorder::new();
        let probed = sim.run_probed(&pat, &map, &mut rec);
        prop_assert_eq!(&probed, &plain);

        // The recorder saw every request with the same aggregates the
        // simulator kept.
        prop_assert_eq!(rec.requests(), plain.requests as u64);
        for (b, stat) in plain.banks.iter().enumerate() {
            let track = rec.banks().get(b).cloned().unwrap_or_default();
            prop_assert_eq!(track.requests, stat.requests as u64);
            prop_assert_eq!(track.busy_cycles, stat.busy_cycles);
            prop_assert_eq!(track.queue_wait, stat.queue_wait);
            prop_assert_eq!(track.max_queue_wait, stat.max_queue_wait);
        }
        let stall_total: u64 = plain.procs.iter().map(|p| p.window_stall).sum();
        prop_assert_eq!(rec.stall_cycles(), stall_total);
    }

    /// Feeding the recorder through the epoch engine's batched
    /// [`dxbsp_telemetry::Probe::request_batch`] slices leaves it in
    /// exactly the state per-request delivery through the event engine
    /// does: same retained events (content *and* order), same per-bank
    /// and per-processor aggregates, same queue-wait histogram and
    /// sampled series. On configs the epoch engine punts, both sides
    /// run events and the property is trivially preserved.
    #[test]
    fn epoch_batched_recorder_state_matches_event_level(
        cfg in arb_config(),
        raw in arb_pattern(8),
    ) {
        let pat = build_pattern(cfg.procs, &raw);
        let map = Interleaved::new(cfg.banks);

        // Both sides on the heap scheduler so neither an epoch-punted
        // run nor the event run reports wheel cascades — the cascade
        // counter is scheduler telemetry, not engine telemetry.
        let mut rec_epoch = Recorder::new();
        let epoch = Simulator::new(
            cfg.clone().with_engine(EngineKind::BankEpoch).with_scheduler(SchedulerKind::Heap),
        )
        .run_probed(&pat, &map, &mut rec_epoch);
        let mut rec_event = Recorder::new();
        let event = Simulator::new(
            cfg.clone().with_engine(EngineKind::EventLevel).with_scheduler(SchedulerKind::Heap),
        )
        .run_probed(&pat, &map, &mut rec_event);

        prop_assert_eq!(epoch, event);
        prop_assert_eq!(rec_epoch.requests(), rec_event.requests());
        prop_assert_eq!(rec_epoch.banks(), rec_event.banks());
        prop_assert_eq!(rec_epoch.procs(), rec_event.procs());
        prop_assert_eq!(rec_epoch.events(), rec_event.events());
        prop_assert_eq!(rec_epoch.events_dropped(), rec_event.events_dropped());
        prop_assert_eq!(rec_epoch.queue_wait_hist(), rec_event.queue_wait_hist());
        prop_assert_eq!(rec_epoch.queue_wait_series(), rec_event.queue_wait_series());
        prop_assert_eq!(rec_epoch.cascades(), rec_event.cascades());
        prop_assert_eq!(rec_epoch.stall_cycles(), rec_event.stall_cycles());
    }

    /// Probed sessions accumulate exactly the totals unprobed sessions
    /// do, and attribute every cycle of the session clock.
    #[test]
    fn probed_session_matches_and_attributes_all_cycles(
        cfg in arb_config(),
        raws in proptest::collection::vec(arb_pattern(8), 1..5),
    ) {
        let map = Interleaved::new(cfg.banks);
        let mut plain = Session::new(SimulatorBackend::new(cfg.clone()));
        let mut probed = Session::new(SimulatorBackend::new(cfg.clone()));
        let mut rec = Recorder::new();
        for raw in &raws {
            let pat = build_pattern(cfg.procs, raw);
            let a = plain.step_with_local(&pat, &map, 3);
            let b = probed.step_with_local_probed(&pat, &map, 3, &mut rec);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(plain.cycles(), probed.cycles());
        prop_assert_eq!(plain.bank_totals(), probed.bank_totals());
        prop_assert_eq!(plain.proc_totals(), probed.proc_totals());
        // The attribution-sums-to-total invariant.
        prop_assert_eq!(rec.attributed_cycles(), probed.cycles());
        prop_assert_eq!(rec.supersteps(), raws.len() as u64);
    }
}

/// The `--threads 1` vs `--threads 4` half of the differential story
/// lives at the CLI layer (`crates/bench/tests/cli.rs`), where probed
/// replays run under both thread counts; here we pin the scheduler
/// cross-product on a fixed contended pattern for quick failure
/// triage.
#[test]
fn probed_matches_unprobed_on_contended_pattern_both_schedulers() {
    let mut pat = AccessPattern::new(8);
    for i in 0..2000u64 {
        pat.push(Request::write((i % 8) as usize, i * 37 % 101));
    }
    let map = Interleaved::new(64);
    for sched in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        let cfg = SimConfig::new(8, 64, 14).with_latency(7).with_window(4).with_scheduler(sched);
        let sim = Simulator::new(cfg);
        let mut rec = Recorder::new();
        assert_eq!(sim.run_probed(&pat, &map, &mut rec), sim.run(&pat, &map), "{sched:?}");
        assert!(rec.stall_cycles() > 0, "window 4 must stall under contention");
    }
}
