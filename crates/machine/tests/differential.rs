//! Differential testing across execution backends: the event-driven
//! simulator against the cycle-stepped reference (same semantics, the
//! slow obvious way), the closed-form model against the simulator
//! (bounded disagreement on pipelined machines), the bank-epoch engine
//! against both event-level schedulers (three-way bit-identity, with
//! explicit punting on the features the epoch path cannot model), and
//! scratch reuse through a [`Session`] against independent fresh runs
//! (bit-identical).

use dxbsp_core::{
    pattern_breakdown, AccessPattern, BankMap, CostModel, EngineKind, Interleaved, MachineParams,
    Request,
};
use dxbsp_machine::{
    Backend, ModelBackend, NetworkModel, ReferenceBackend, SchedulerKind, Session, SimConfig,
    Simulator, SimulatorBackend,
};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        1usize..=4,
        1usize..=4,
        1u64..=10,
        1u64..=3,
        0u64..=8,
        prop_oneof![Just(None), (1usize..=4).prop_map(Some)],
        prop_oneof![Just(None), ((1usize..=2), (1usize..=3)).prop_map(Some)],
        prop_oneof![Just(None), ((1usize..=8), (0u64..=6)).prop_map(Some)],
    )
        .prop_map(|(p, xb, d, g, lat, win, net, strip)| {
            let banks = p * xb * 2; // even, so sections always divide
            let mut cfg = SimConfig::new(p, banks, d).with_issue_gap(g).with_latency(lat);
            if let Some(w) = win {
                cfg = cfg.with_window(w);
            }
            if let Some((sections, ports)) = net {
                if banks % sections == 0 {
                    cfg = cfg.with_sections(sections, ports);
                }
            }
            if let Some((vl, startup)) = strip {
                cfg = cfg.with_strip_mining(vl, startup);
            }
            cfg
        })
}

fn arb_requests(max_procs: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0..max_procs, 0u64..64), 0..120)
}

fn pattern_from(procs: usize, raw: &[(usize, u64)]) -> AccessPattern {
    let mut pat = AccessPattern::new(procs);
    for &(p, a) in raw {
        pat.push(Request::write(p % procs, a));
    }
    pat
}

/// Steps any two backends on the same pattern and asserts exact
/// agreement on the cycle count and (when both report them) the
/// per-bank request totals.
fn assert_backends_agree<A: Backend, B: Backend>(
    a: &mut A,
    b: &mut B,
    pat: &AccessPattern,
    map: &dyn BankMap,
) {
    let oa = a.step(pat, map);
    let ob = b.step(pat, map);
    assert_eq!(
        oa.cycles,
        ob.cycles,
        "{} vs {} cycle mismatch on {:?}",
        a.name(),
        b.name(),
        a.config()
    );
    if let (Some(la), Some(lb)) = (oa.bank_requests(), ob.bank_requests()) {
        assert_eq!(la, lb, "{} vs {} bank-load mismatch", a.name(), b.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The fast simulator and the naive reference agree exactly.
    #[test]
    fn fast_simulator_matches_reference(cfg in arb_config(), raw in arb_requests(4)) {
        let pat = pattern_from(cfg.procs, &raw);
        let map = Interleaved::new(cfg.banks);
        assert_backends_agree(
            &mut SimulatorBackend::new(cfg.clone()),
            &mut ReferenceBackend::new(cfg),
            &pat,
            &map,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The time-wheel scheduler is bit-identical to the binary-heap
    /// oracle: full [`dxbsp_machine::SimResult`] equality — cycle
    /// count, per-bank statistics, per-processor statistics, network
    /// wait, and (when recorded) the per-request event log — across
    /// randomized configurations including bank caches.
    #[test]
    fn wheel_matches_heap_bit_identically(
        cfg in arb_config(),
        cache in prop_oneof![Just(None), ((1usize..=4), (1u64..=3)).prop_map(Some)],
        log in any::<bool>(),
        raw in arb_requests(4),
    ) {
        let mut cfg = cfg;
        if let Some((lines, hit)) = cache {
            let cap = cfg.bank_delay();
            cfg = cfg.with_bank_cache(lines, hit.min(cap));
        }
        if log {
            cfg = cfg.with_event_log();
        }
        // Pin to the event engine: this property is about the two
        // event-queue implementations, so neither side may take the
        // epoch shortcut.
        let cfg = cfg.with_engine(EngineKind::EventLevel);
        let pat = pattern_from(cfg.procs, &raw);
        let map = Interleaved::new(cfg.banks);
        let wheel =
            Simulator::new(cfg.clone().with_scheduler(SchedulerKind::Wheel)).run(&pat, &map);
        let heap = Simulator::new(cfg.with_scheduler(SchedulerKind::Heap)).run(&pat, &map);
        prop_assert_eq!(wheel, heap);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The three-way engine matrix: the bank-epoch engine agrees with
    /// *both* event-level schedulers on the full
    /// [`dxbsp_machine::SimResult`] — cycles, per-bank and
    /// per-processor statistics, network wait, and (when recorded) the
    /// event log — across the whole randomized config space, including
    /// the corners the epoch path must punt back to events (issue
    /// windows, sectioned ports, bank caches, strips). Punting is
    /// asserted to be explicit: `epoch_applies` must be exactly the
    /// feature predicate, never silently wrong on either side.
    #[test]
    fn epoch_matches_wheel_and_heap_bit_identically(
        cfg in arb_config(),
        cache in prop_oneof![Just(None), ((1usize..=4), (1u64..=3)).prop_map(Some)],
        log in any::<bool>(),
        raw in arb_requests(4),
    ) {
        let mut cfg = cfg;
        if let Some((lines, hit)) = cache {
            let cap = cfg.bank_delay();
            cfg = cfg.with_bank_cache(lines, hit.min(cap));
        }
        if log {
            cfg = cfg.with_event_log();
        }
        let epoch_cfg = cfg.clone().with_engine(EngineKind::BankEpoch);
        let interleaves = cfg.window.is_some()
            || cfg.strip.is_some()
            || cfg.bank_cache.is_some()
            || !matches!(cfg.network, NetworkModel::Uniform);
        prop_assert_eq!(epoch_cfg.epoch_applies(), !interleaves);
        prop_assert_eq!(
            epoch_cfg.engine_in_force(),
            if interleaves { EngineKind::EventLevel } else { EngineKind::BankEpoch }
        );

        let pat = pattern_from(cfg.procs, &raw);
        let map = Interleaved::new(cfg.banks);
        let epoch = Simulator::new(epoch_cfg).run(&pat, &map);
        let event = cfg.with_engine(EngineKind::EventLevel);
        let wheel =
            Simulator::new(event.clone().with_scheduler(SchedulerKind::Wheel)).run(&pat, &map);
        let heap = Simulator::new(event.with_scheduler(SchedulerKind::Heap)).run(&pat, &map);
        prop_assert_eq!(&epoch, &wheel);
        prop_assert_eq!(&wheel, &heap);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On the machine class the closed form describes (pipelined issue,
    /// uniform network, no latency, no window, no strips, no caches)
    /// the (d,x)-BSP charge brackets the simulation:
    ///
    /// * `model ≤ simulated + g` — the simulator can undercut the
    ///   charge by less than one issue gap (the charge rounds the
    ///   issue stream up to whole gaps);
    /// * `simulated ≤ g·h + d·R` — issue and bank serialization can at
    ///   worst add, never multiply, so the simulation stays within the
    ///   sum of the model's two terms (≤ 2× the charge).
    #[test]
    fn model_brackets_simulation_on_pipelined_machines(
        p in 1usize..=4,
        x in 1usize..=8,
        d in 1u64..=10,
        g in 1u64..=3,
        raw in arb_requests(4),
    ) {
        let m = MachineParams::new(p, g, 0, d, x);
        let pat = pattern_from(p, &raw);
        let map = Interleaved::new(m.banks());
        let simulated = SimulatorBackend::from_params(&m).step(&pat, &map).cycles;
        let model = ModelBackend::new(m, CostModel::DxBsp).step(&pat, &map).cycles;
        let b = pattern_breakdown(&m, &pat, &map, CostModel::DxBsp);
        prop_assert_eq!(model, b.total());
        prop_assert!(
            model <= simulated + m.g,
            "model {} above simulated {} + g {} on {:?}",
            model, simulated, m.g, m
        );
        prop_assert!(
            simulated <= b.processor + b.bank,
            "simulated {} above g*h {} + d*R {} on {:?}",
            simulated, b.processor, b.bank, m
        );
    }
}

/// A handful of fixed corner cases pinned exactly (cheap regression
/// net in addition to the property).
#[test]
fn pinned_corner_cases_agree() {
    let cases: Vec<(SimConfig, Vec<(usize, u64)>)> = vec![
        // Two procs race one bank with a tight window and latency.
        (
            SimConfig::new(2, 4, 5).with_latency(3).with_window(1),
            vec![(0, 0), (1, 0), (0, 0), (1, 0)],
        ),
        // Section port of 1 throttles everything.
        (SimConfig::new(4, 8, 2).with_sections(1, 1), (0..32).map(|i| (i % 4, i as u64)).collect()),
        // Slow issue, fast banks.
        (SimConfig::new(1, 2, 1).with_issue_gap(7), vec![(0, 0), (0, 1), (0, 0), (0, 1)]),
        // Window 2 with section contention and latency.
        (
            SimConfig::new(3, 6, 4).with_latency(5).with_window(2).with_sections(2, 1),
            (0..24).map(|i| (i % 3, (i * 5 % 11) as u64)).collect(),
        ),
    ];
    for (cfg, raw) in cases {
        let pat = pattern_from(cfg.procs, &raw);
        let map = Interleaved::new(cfg.banks);
        assert_backends_agree(
            &mut SimulatorBackend::new(cfg.clone()),
            &mut ReferenceBackend::new(cfg),
            &pat,
            &map,
        );
    }
}

/// Two Sessions differing only in scheduler replay the same superstep
/// sequence and accumulate identical totals: scratch reuse does not
/// open a gap between the wheel and the heap either.
#[test]
fn wheel_and_heap_sessions_agree_across_supersteps() {
    let base = SimConfig::new(4, 32, 9).with_latency(4).with_window(3).with_sync_overhead(50);
    let map = Interleaved::new(base.banks);
    let mut wheel =
        Session::new(SimulatorBackend::new(base.clone().with_scheduler(SchedulerKind::Wheel)));
    let mut heap = Session::new(SimulatorBackend::new(base.with_scheduler(SchedulerKind::Heap)));
    for round in 0..10u64 {
        let raw: Vec<(usize, u64)> = (0..(30 + round * 17))
            .map(|i| ((i % 4) as usize, (i * 13 + round * 29) % 48))
            .collect();
        let pat = pattern_from(4, &raw);
        let a = wheel.step(&pat, &map).into_result();
        let b = heap.step(&pat, &map).into_result();
        assert_eq!(a, b, "schedulers diverged on superstep {round}");
    }
    assert_eq!(wheel.cycles(), heap.cycles());
    assert_eq!(wheel.supersteps(), heap.supersteps());
}

/// N supersteps through one Session (reusing one scratch allocation)
/// are bit-identical to N independent fresh `Simulator::run` calls —
/// the guarantee that makes the reuse optimization safe to adopt.
#[test]
fn session_reuse_is_bit_identical_to_fresh_runs() {
    let cfg = SimConfig::new(4, 16, 7).with_latency(3).with_window(4);
    let mut session = Session::new(SimulatorBackend::new(cfg.clone()));
    let map = Interleaved::new(cfg.banks);
    let patterns: Vec<AccessPattern> = (0..8)
        .map(|round| {
            let raw: Vec<(usize, u64)> = (0..(20 + round * 13))
                .map(|i| (i % 4, ((i * 31 + round * 7) % 40) as u64))
                .collect();
            pattern_from(4, &raw)
        })
        .collect();

    let mut expected_cycles = 0u64;
    for pat in &patterns {
        let fresh = Simulator::new(cfg.clone()).run(pat, &map);
        let reused = session.step(pat, &map).into_result();
        assert_eq!(reused, fresh, "session diverged from a fresh run");
        expected_cycles += fresh.cycles + cfg.sync_overhead;
    }
    assert_eq!(session.cycles(), expected_cycles);
    assert_eq!(session.supersteps(), patterns.len());

    // Reconfiguring keeps the scratch but must not leak state either.
    let cfg2 = SimConfig::new(2, 8, 3).with_sections(2, 1);
    session.backend_mut().reconfigure(cfg2.clone());
    session.reset_totals();
    let pat = pattern_from(2, &[(0, 1), (1, 1), (0, 2), (1, 5), (0, 1)]);
    let map2 = Interleaved::new(cfg2.banks);
    let fresh = Simulator::new(cfg2).run(&pat, &map2);
    assert_eq!(session.step(&pat, &map2).into_result(), fresh);
}
