//! Differential testing: the event-driven simulator against the
//! cycle-stepped reference, which implements the same semantics the
//! slow, obvious way. On every generated input the two must agree on
//! the cycle count and the per-bank request totals exactly.

use dxbsp_core::{AccessPattern, Interleaved, Request};
use dxbsp_machine::{run_reference, SimConfig, Simulator};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        1usize..=4,
        1usize..=4,
        1u64..=10,
        1u64..=3,
        0u64..=8,
        prop_oneof![Just(None), (1usize..=4).prop_map(Some)],
        prop_oneof![Just(None), ((1usize..=2), (1usize..=3)).prop_map(Some)],
        prop_oneof![Just(None), ((1usize..=8), (0u64..=6)).prop_map(Some)],
    )
        .prop_map(|(p, xb, d, g, lat, win, net, strip)| {
            let banks = p * xb * 2; // even, so sections always divide
            let mut cfg = SimConfig::new(p, banks, d).with_issue_gap(g).with_latency(lat);
            if let Some(w) = win {
                cfg = cfg.with_window(w);
            }
            if let Some((sections, ports)) = net {
                if banks % sections == 0 {
                    cfg = cfg.with_sections(sections, ports);
                }
            }
            if let Some((vl, startup)) = strip {
                cfg = cfg.with_strip_mining(vl, startup);
            }
            cfg
        })
}

fn arb_requests(max_procs: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0..max_procs, 0u64..64), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The fast simulator and the naive reference agree exactly.
    #[test]
    fn fast_simulator_matches_reference(cfg in arb_config(), raw in arb_requests(4)) {
        let mut pat = AccessPattern::new(cfg.procs);
        for (p, a) in raw {
            pat.push(Request::write(p % cfg.procs, a));
        }
        let map = Interleaved::new(cfg.banks);
        let fast = Simulator::new(cfg).run(&pat, &map);
        let slow = run_reference(&cfg, &pat, &map);
        prop_assert_eq!(fast.cycles, slow.cycles, "cycle mismatch on {:?}", cfg);
        let fast_loads: Vec<usize> = fast.banks.iter().map(|b| b.requests).collect();
        prop_assert_eq!(fast_loads, slow.bank_requests);
    }
}

/// A handful of fixed corner cases pinned exactly (cheap regression
/// net in addition to the property).
#[test]
fn pinned_corner_cases_agree() {
    let cases: Vec<(SimConfig, Vec<(usize, u64)>)> = vec![
        // Two procs race one bank with a tight window and latency.
        (
            SimConfig::new(2, 4, 5).with_latency(3).with_window(1),
            vec![(0, 0), (1, 0), (0, 0), (1, 0)],
        ),
        // Section port of 1 throttles everything.
        (
            SimConfig::new(4, 8, 2).with_sections(1, 1),
            (0..32).map(|i| (i % 4, i as u64)).collect(),
        ),
        // Slow issue, fast banks.
        (
            SimConfig::new(1, 2, 1).with_issue_gap(7),
            vec![(0, 0), (0, 1), (0, 0), (0, 1)],
        ),
        // Window 2 with section contention and latency.
        (
            SimConfig::new(3, 6, 4).with_latency(5).with_window(2).with_sections(2, 1),
            (0..24).map(|i| (i % 3, (i * 5 % 11) as u64)).collect(),
        ),
    ];
    for (cfg, raw) in cases {
        let mut pat = AccessPattern::new(cfg.procs);
        for (p, a) in raw {
            pat.push(Request::write(p, a));
        }
        let map = Interleaved::new(cfg.banks);
        let fast = Simulator::new(cfg).run(&pat, &map);
        let slow = run_reference(&cfg, &pat, &map);
        assert_eq!(fast.cycles, slow.cycles, "mismatch on {cfg:?}");
    }
}
