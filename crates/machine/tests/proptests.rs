//! Property-based tests relating simulated time to the (d,x)-BSP
//! cost accounting: the simulator must respect the model's lower
//! bounds and a conservative work upper bound on every input.

use dxbsp_core::{AccessPattern, Interleaved, Request};
use dxbsp_machine::{SimConfig, Simulator};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        1usize..=8,
        1usize..=6,
        1u64..=20,
        1u64..=4,
        0u64..=16,
        prop_oneof![Just(None), (1usize..=8).prop_map(Some)],
    )
        .prop_map(|(p, xb, d, g, lat, win)| {
            let mut cfg = SimConfig::new(p, p * xb, d).with_issue_gap(g).with_latency(lat);
            if let Some(w) = win {
                cfg = cfg.with_window(w);
            }
            cfg
        })
}

fn arb_pattern(max_procs: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0..max_procs, 0u64..256), 0..300)
}

fn build_pattern(procs: usize, raw: &[(usize, u64)]) -> AccessPattern {
    let mut pat = AccessPattern::new(procs);
    for &(p, a) in raw {
        pat.push(Request::write(p % procs, a));
    }
    pat
}

proptest! {
    /// Simulated cycles are bounded below by each model term: the bank
    /// serial bound d·R and the issue bound g·(h−1)+d.
    #[test]
    fn simulation_respects_model_lower_bounds(cfg in arb_config(), raw in arb_pattern(8)) {
        let pat = build_pattern(cfg.procs, &raw);
        prop_assume!(!pat.is_empty());
        let map = Interleaved::new(cfg.banks);
        let res = Simulator::new(cfg.clone()).run(&pat, &map);
        let r = pat.max_bank_load(&map) as u64;
        let h = pat.contention_profile().max_processor_load as u64;
        prop_assert!(res.cycles >= cfg.bank_delay() * r,
            "cycles {} < d·R = {}·{}", res.cycles, cfg.bank_delay(), r);
        prop_assert!(res.cycles >= cfg.issue_gap * (h - 1) + cfg.bank_delay(),
            "cycles {} < issue bound", res.cycles);
        prop_assert!(res.cycles >= 2 * cfg.latency + cfg.bank_delay());
    }

    /// Simulated cycles never exceed the fully serialized work bound.
    #[test]
    fn simulation_respects_serial_upper_bound(cfg in arb_config(), raw in arb_pattern(8)) {
        let pat = build_pattern(cfg.procs, &raw);
        prop_assume!(!pat.is_empty());
        let map = Interleaved::new(cfg.banks);
        let res = Simulator::new(cfg.clone()).run(&pat, &map);
        let n = pat.len() as u64;
        // Worst case: every request fully serialized through issue,
        // two transit legs and its bank.
        let bound = n * (cfg.issue_gap + cfg.bank_delay() + 2 * cfg.latency);
        prop_assert!(res.cycles <= bound, "cycles {} > serial bound {}", res.cycles, bound);
    }

    /// Every bank's recorded request count matches the pattern's bank
    /// loads, and stats are internally consistent.
    #[test]
    fn stats_are_consistent(cfg in arb_config(), raw in arb_pattern(8)) {
        let pat = build_pattern(cfg.procs, &raw);
        let map = Interleaved::new(cfg.banks);
        let res = Simulator::new(cfg.clone()).run(&pat, &map);
        let loads = pat.bank_loads(&map);
        for (b, stat) in res.banks.iter().enumerate() {
            prop_assert_eq!(stat.requests, loads[b]);
            // Per-bank service: each bank's busy time is its own d_b
            // (identical to d·loads for the uniform configs here).
            prop_assert_eq!(stat.busy_cycles, cfg.delay.service(b) * loads[b] as u64);
            prop_assert!(stat.max_queue_wait <= stat.queue_wait);
        }
        let issued: usize = res.procs.iter().map(|p| p.issued).sum();
        prop_assert_eq!(issued, pat.len());
        prop_assert_eq!(res.requests, pat.len());
        let done = res.procs.iter().map(|p| p.done_at).max().unwrap_or(0);
        prop_assert_eq!(done, res.cycles);
    }

    /// A strictly larger window never slows a run down.
    #[test]
    fn larger_window_never_slower(raw in arb_pattern(4), w in 1usize..6) {
        let base = SimConfig::new(4, 32, 8).with_latency(12);
        let pat = build_pattern(4, &raw);
        let map = Interleaved::new(32);
        let tight = Simulator::new(base.clone().with_window(w)).run(&pat, &map);
        let loose = Simulator::new(base.clone().with_window(w + 1)).run(&pat, &map);
        let free = Simulator::new(base).run(&pat, &map);
        prop_assert!(loose.cycles <= tight.cycles);
        prop_assert!(free.cycles <= loose.cycles);
    }

    /// Narrower section ports never speed a run up, and the uniform
    /// network is at least as fast as any sectioned one.
    #[test]
    fn narrower_ports_never_faster(raw in arb_pattern(4), ports in 1usize..4) {
        let pat = build_pattern(4, &raw);
        let map = Interleaved::new(32);
        let uniform = Simulator::new(SimConfig::new(4, 32, 8)).run(&pat, &map);
        let wide = Simulator::new(SimConfig::new(4, 32, 8).with_sections(4, ports + 1)).run(&pat, &map);
        let narrow = Simulator::new(SimConfig::new(4, 32, 8).with_sections(4, ports)).run(&pat, &map);
        prop_assert!(wide.cycles <= narrow.cycles);
        prop_assert!(uniform.cycles <= narrow.cycles);
    }

    /// Doubling the bank delay at least never speeds things up, and on
    /// hammer patterns scales time exactly linearly.
    #[test]
    fn delay_monotone(raw in arb_pattern(4), d in 1u64..10) {
        let pat = build_pattern(4, &raw);
        let map = Interleaved::new(32);
        let slow = Simulator::new(SimConfig::new(4, 32, d + 1)).run(&pat, &map);
        let fast = Simulator::new(SimConfig::new(4, 32, d)).run(&pat, &map);
        prop_assert!(slow.cycles >= fast.cycles);
    }
}

#[test]
fn hammer_time_scales_linearly_in_d() {
    let pat = AccessPattern::scatter(1, &vec![0u64; 100]);
    let map = Interleaved::new(8);
    for d in [2u64, 4, 8, 16] {
        let res = Simulator::new(SimConfig::new(1, 8, d)).run(&pat, &map);
        assert_eq!(res.cycles, d * 100);
    }
}

mod delay_models {
    //! Non-uniform bank delay models across the three execution
    //! engines: the bank-epoch bulk walk (whose prefix recurrence is
    //! already per-bank, so [`PerBank`] stays on its fast path), the
    //! event engine's time wheel, and the binary-heap oracle scheduler
    //! must agree bit for bit on every random per-bank delay vector.
    //!
    //! [`PerBank`]: BankDelayModel::PerBank

    use dxbsp_core::{AccessPattern, BankDelayModel, EngineKind, Interleaved, ProcBankDistance};
    use dxbsp_machine::{SchedulerKind, SimConfig, Simulator};
    use proptest::prelude::*;

    /// The three engine configurations under test, from a shared base.
    fn engines(base: &SimConfig) -> [SimConfig; 3] {
        [
            base.clone(),
            base.clone().with_engine(EngineKind::EventLevel),
            base.clone().with_engine(EngineKind::EventLevel).with_scheduler(SchedulerKind::Heap),
        ]
    }

    proptest! {
        /// Random per-bank delay vectors: epoch, wheel, and heap agree
        /// on total cycles and on every bank's request and busy-cycle
        /// totals — and the epoch engine really is the one in force
        /// (per-bank delays must not punt it).
        #[test]
        fn per_bank_three_way_engine_agreement(
            p in 1usize..=8,
            xb in 1usize..=6,
            // Drawn at the maximum machine width (8·6 banks) and
            // truncated to the realized bank count below.
            delays in proptest::collection::vec(1u64..=20, 48usize..=48),
            raw in super::arb_pattern(8),
            g in 1u64..=4,
            lat in 0u64..=16,
        ) {
            let banks = p * xb;
            let model = BankDelayModel::per_bank(delays[..banks].to_vec());
            let base = SimConfig::new(p, banks, model.uniform_summary())
                .with_delay_model(model)
                .with_issue_gap(g)
                .with_latency(lat);
            prop_assert_eq!(base.engine_in_force(), EngineKind::BankEpoch);
            let pat = super::build_pattern(p, &raw);
            let map = Interleaved::new(banks);
            let [epoch, wheel, heap] = engines(&base).map(|cfg| Simulator::new(cfg).run(&pat, &map));
            prop_assert_eq!(epoch.cycles, wheel.cycles, "epoch vs wheel");
            prop_assert_eq!(wheel.cycles, heap.cycles, "wheel vs heap");
            for b in 0..banks {
                prop_assert_eq!(epoch.banks[b].requests, wheel.banks[b].requests);
                prop_assert_eq!(epoch.banks[b].busy_cycles, wheel.banks[b].busy_cycles);
                prop_assert_eq!(wheel.banks[b].busy_cycles, heap.banks[b].busy_cycles);
            }
        }

        /// A distance matrix punts the bulk engines to the event loop
        /// (per-pair transit breaks issue-order-equals-arrival-order),
        /// but the two event schedulers must still agree exactly.
        #[test]
        fn distance_model_punts_epoch_and_schedulers_agree(
            raw in super::arb_pattern(4),
            extra in 0u64..=5,
        ) {
            let model = BankDelayModel::Distance {
                base: vec![4; 16],
                matrix: ProcBankDistance::new(4, 16, vec![extra; 64]).unwrap(),
            };
            let base = SimConfig::new(4, 16, model.uniform_summary()).with_delay_model(model);
            prop_assert_eq!(base.engine_in_force(), EngineKind::EventLevel);
            let pat = super::build_pattern(4, &raw);
            let map = Interleaved::new(16);
            let [punted, wheel, heap] = engines(&base).map(|cfg| Simulator::new(cfg).run(&pat, &map));
            prop_assert_eq!(punted.cycles, wheel.cycles, "punted epoch vs explicit wheel");
            prop_assert_eq!(wheel.cycles, heap.cycles, "wheel vs heap");
        }
    }

    /// One slow bank in an otherwise fast machine: a hammer on the
    /// slow bank is charged at *its* delay — not the summary — by all
    /// three engines, and only that bank accrues busy cycles.
    #[test]
    fn single_hot_slow_bank_is_charged_at_its_own_delay() {
        let mut delays = vec![2u64; 8];
        delays[0] = 20;
        let model = BankDelayModel::per_bank(delays);
        let base = SimConfig::new(1, 8, model.uniform_summary()).with_delay_model(model);
        let pat = AccessPattern::scatter(1, &vec![0u64; 100]);
        let map = Interleaved::new(8);
        for cfg in engines(&base) {
            let res = Simulator::new(cfg).run(&pat, &map);
            assert_eq!(res.cycles, 20 * 100);
            assert_eq!(res.banks[0].busy_cycles, 20 * 100);
            assert!(res.banks[1..].iter().all(|b| b.busy_cycles == 0));
        }
    }

    /// Zero-delay banks (free service, as long as one bank still costs
    /// something) are a legal corner: the engines must agree rather
    /// than divide by the free banks' service time.
    #[test]
    fn zero_delay_banks_agree_across_engines() {
        let mut delays = vec![0u64; 16];
        for d in &mut delays[..8] {
            *d = 3;
        }
        let model = BankDelayModel::per_bank(delays);
        let base = SimConfig::new(4, 16, model.uniform_summary()).with_delay_model(model);
        let addrs: Vec<u64> = (0..64).map(|i| i % 16).collect();
        let pat = AccessPattern::scatter(4, &addrs);
        let map = Interleaved::new(16);
        let [epoch, wheel, heap] = engines(&base).map(|cfg| Simulator::new(cfg).run(&pat, &map));
        assert_eq!(epoch.cycles, wheel.cycles, "epoch vs wheel");
        assert_eq!(wheel.cycles, heap.cycles, "wheel vs heap");
        assert!(epoch.banks[8..].iter().all(|b| b.busy_cycles == 0));
    }
}

mod hybrid {
    //! The hybrid execution mode's conservatism properties: a step the
    //! classifier charges closed-form must agree with what the full
    //! event-level simulation (under either scheduler) would have
    //! produced, and `ExecMode::Full` must be bit-identical to the
    //! plain simulator on every input.

    use dxbsp_core::{AccessPattern, ExecMode, Interleaved, Request};
    use dxbsp_machine::{Backend, SchedulerKind, SimConfig, Simulator, SimulatorBackend};
    use proptest::prelude::*;

    /// Hybrid-eligible machine shapes only: uniform network, no
    /// window/strip/cache — the gate `SimConfig::hybrid_eligible`
    /// demands before the classifier may bypass the event loop.
    fn arb_eligible_config() -> impl Strategy<Value = SimConfig> {
        (1usize..=8, 1usize..=6, 1u64..=20, 1u64..=4, 0u64..=16).prop_map(|(p, xb, d, g, lat)| {
            SimConfig::new(p, p * xb, d).with_issue_gap(g).with_latency(lat)
        })
    }

    /// Patterns skewed toward the classifier's analytic classes:
    /// conflict-free spreads, single-location hammers, and arbitrary
    /// read/write mixes (which mostly classify `Simulate`).
    fn arb_step(max_procs: usize) -> impl Strategy<Value = Vec<(usize, u64, bool)>> {
        prop_oneof![
            // Distinct addresses: R ≤ 1 whenever n ≤ banks.
            (1usize..=48).prop_map(|n| (0..n).map(|i| (i, i as u64, false)).collect()),
            // One hot location, reads only: the HotBank closed form.
            (1usize..=64, 0u64..256).prop_map(|(n, a)| (0..n).map(|i| (i, a, false)).collect()),
            // Anything goes, writes included.
            proptest::collection::vec((0..max_procs, 0u64..256, any::<bool>()), 0..200),
        ]
    }

    fn build(procs: usize, raw: &[(usize, u64, bool)]) -> AccessPattern {
        let mut pat = AccessPattern::new(procs);
        for &(p, a, w) in raw {
            let p = p % procs;
            pat.push(if w { Request::write(p, a) } else { Request::read(p, a) });
        }
        pat
    }

    proptest! {
        /// With a zero error bound only exactly-priced classes may be
        /// charged analytically, so every modeled step must reproduce
        /// the full simulation's cycles, request count, and per-bank
        /// request totals bit for bit — under the time wheel *and* the
        /// binary-heap oracle scheduler.
        #[test]
        fn zero_bound_modeled_steps_match_full_simulation_exactly(
            cfg in arb_eligible_config(),
            raw in arb_step(8),
        ) {
            let pat = build(cfg.procs, &raw);
            let map = Interleaved::new(cfg.banks);
            let mut backend =
                SimulatorBackend::new(cfg.clone().with_exec(ExecMode::hybrid(0.0)));
            let out = backend.step(&pat, &map);
            if out.modeled {
                let wheel = Simulator::new(cfg.clone()).run(&pat, &map);
                let heap =
                    Simulator::new(cfg.clone().with_scheduler(SchedulerKind::Heap)).run(&pat, &map);
                prop_assert_eq!(wheel.cycles, heap.cycles, "schedulers disagree");
                prop_assert_eq!(out.cycles, wheel.cycles, "modeled charge drifts from simulation");
                prop_assert_eq!(out.requests, wheel.requests);
                let banks = out.bank_requests().expect("hybrid steps carry bank stats");
                let full: Vec<usize> = wheel.banks.iter().map(|b| b.requests).collect();
                prop_assert_eq!(banks, full);
            }
        }

        /// With any declared bound, every modeled step's charge stays
        /// within that bound of the full event-level simulation:
        /// |full − charged| · 10⁶ ≤ ppm · full, in exact integer
        /// arithmetic.
        #[test]
        fn modeled_steps_stay_within_the_declared_bound(
            cfg in arb_eligible_config(),
            raw in arb_step(8),
            ppm in 0u32..=500_000,
        ) {
            let pat = build(cfg.procs, &raw);
            let map = Interleaved::new(cfg.banks);
            let exec = ExecMode::hybrid(f64::from(ppm) / 1e6);
            let mut backend = SimulatorBackend::new(cfg.clone().with_exec(exec));
            let out = backend.step(&pat, &map);
            if out.modeled {
                let full = Simulator::new(cfg.clone()).run(&pat, &map).cycles;
                let err = full.abs_diff(out.cycles);
                prop_assert!(
                    err * 1_000_000 <= u64::from(ppm) * full,
                    "modeled {} vs full {}: err {} over bound {} ppm",
                    out.cycles, full, err, ppm
                );
            }
        }

        /// A conflict-free spread (distinct banks for every request) is
        /// never refused: the classifier must recognize it and charge
        /// it closed-form even at a zero error bound.
        #[test]
        fn conflict_free_spreads_always_model(
            cfg in arb_eligible_config(),
            n in 1usize..=32,
        ) {
            let n = n.min(cfg.banks);
            // Addresses 0..n land on distinct banks under interleaving.
            let addrs: Vec<u64> = (0..n as u64).collect();
            let pat = AccessPattern::gather(cfg.procs, &addrs);
            let map = Interleaved::new(cfg.banks);
            let mut backend =
                SimulatorBackend::new(cfg.clone().with_exec(ExecMode::hybrid(0.0)));
            let out = backend.step(&pat, &map);
            prop_assert!(out.modeled, "R ≤ 1 step fell through to simulation");
            prop_assert_eq!(out.cycles, Simulator::new(cfg.clone()).run(&pat, &map).cycles);
        }

        /// `ExecMode::Full` (the default) through the backend seam is
        /// bit-identical to the plain simulator on arbitrary eligible
        /// configurations and patterns — hybrid machinery must be
        /// completely inert when not asked for.
        #[test]
        fn full_mode_is_bit_identical_to_the_plain_simulator(
            cfg in arb_eligible_config(),
            raw in arb_step(8),
        ) {
            let pat = build(cfg.procs, &raw);
            let map = Interleaved::new(cfg.banks);
            let mut backend = SimulatorBackend::new(cfg.clone());
            let out = backend.step(&pat, &map);
            prop_assert!(!out.modeled);
            let direct = Simulator::new(cfg.clone()).run(&pat, &map);
            prop_assert_eq!(out.cycles, direct.cycles);
            prop_assert_eq!(out.result, Some(direct));
        }
    }
}

mod tracefile_fuzz {
    use dxbsp_core::{AccessPattern, Request};
    use dxbsp_machine::{decode_trace, encode_trace, TraceStep};
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary bytes never panic the decoder.
        #[test]
        fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let _ = decode_trace(&bytes);
        }

        /// Every encodable trace round-trips exactly.
        #[test]
        fn round_trip(
            steps in proptest::collection::vec(
                (1usize..=4, proptest::collection::vec((0usize..4, 0u64..1000, any::<bool>()), 0..50), 0u64..100, ".{0,12}"),
                0..8,
            )
        ) {
            let trace: Vec<TraceStep> = steps
                .into_iter()
                .map(|(procs, reqs, local, label)| {
                    let mut pat = AccessPattern::new(procs);
                    for (p, a, w) in reqs {
                        let p = p % procs;
                        pat.push(if w { Request::write(p, a) } else { Request::read(p, a) });
                    }
                    TraceStep { pattern: pat, local_work: local, label }
                })
                .collect();
            let back = decode_trace(&encode_trace(&trace).expect("encodes")).expect("round trip decodes");
            prop_assert_eq!(back, trace);
        }

        /// Corrupting a single byte either still decodes or fails
        /// cleanly — never panics.
        #[test]
        fn single_byte_corruption_is_safe(flip in 0usize..200, val in any::<u8>()) {
            let mut pat = AccessPattern::new(2);
            for i in 0..10u64 {
                pat.push(Request::write((i % 2) as usize, i));
            }
            let trace = vec![TraceStep { pattern: pat, local_work: 3, label: "x".into() }];
            let mut bytes = encode_trace(&trace).expect("encodes").to_vec();
            if flip < bytes.len() {
                bytes[flip] = val;
            }
            let _ = decode_trace(&bytes);
        }
    }
}
