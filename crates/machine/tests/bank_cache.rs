//! Bank-cache (§7 extension) semantics tests.

use dxbsp_core::{AccessPattern, Interleaved, Request};
use dxbsp_machine::{SimConfig, Simulator};

#[test]
fn hot_address_hits_after_first_miss() {
    // 100 requests to one address, d=14, hit=1: first is a miss (14),
    // the other 99 hit (1 each).
    let cfg = SimConfig::new(1, 4, 14).with_bank_cache(4, 1);
    let sim = Simulator::new(cfg);
    let pat = AccessPattern::scatter(1, &vec![0u64; 100]);
    let res = sim.run(&pat, &Interleaved::new(4));
    assert_eq!(res.cycles, 14 + 99);
    assert_eq!(res.banks[0].cache_hits, 99);
    assert_eq!(res.banks[0].busy_cycles, 14 + 99);
}

#[test]
fn distinct_addresses_on_one_bank_all_miss() {
    // Addresses 0, 4, 8, … share bank 0 of 4 but never repeat: the
    // one-line cache never hits.
    let cfg = SimConfig::new(1, 4, 6).with_bank_cache(1, 1);
    let sim = Simulator::new(cfg);
    let addrs: Vec<u64> = (0..20).map(|i| i * 4).collect();
    let pat = AccessPattern::scatter(1, &addrs);
    let res = sim.run(&pat, &Interleaved::new(4));
    assert_eq!(res.banks[0].cache_hits, 0);
    assert_eq!(res.cycles, 20 * 6);
}

#[test]
fn lru_eviction_is_exact() {
    // Cache of 2 lines on bank 0; pattern A B A C A: A hits at 3rd
    // access (cache {B,A}), C misses and evicts B ({C,A}), A hits.
    let cfg = SimConfig::new(1, 1, 10).with_bank_cache(2, 1);
    let sim = Simulator::new(cfg);
    let mut pat = AccessPattern::new(1);
    for addr in [100u64, 200, 100, 300, 100] {
        pat.push(Request::read(0, addr));
    }
    let res = sim.run(&pat, &Interleaved::new(1));
    assert_eq!(res.banks[0].cache_hits, 2);
    // 3 misses × 10 + 2 hits × 1.
    assert_eq!(res.banks[0].busy_cycles, 32);
}

#[test]
fn cache_defuses_hot_spot_contention() {
    // The headline effect: with a bank cache, the d·k term becomes
    // ≈ hit_delay·k — the §7 "caching at the memory banks" observation.
    let n = 4096;
    let pat = AccessPattern::scatter(8, &vec![0u64; n]);
    let map = Interleaved::new(64);
    let plain = Simulator::new(SimConfig::new(8, 64, 14)).run(&pat, &map);
    let cached = Simulator::new(SimConfig::new(8, 64, 14).with_bank_cache(8, 1)).run(&pat, &map);
    assert_eq!(plain.cycles, 14 * n as u64);
    assert!(cached.cycles < plain.cycles / 8, "{} vs {}", cached.cycles, plain.cycles);
}

#[test]
fn cache_never_slows_a_run_down() {
    let mut pat = AccessPattern::new(4);
    for i in 0..2000u64 {
        pat.push(Request::write((i % 4) as usize, i * 37 % 97));
    }
    let map = Interleaved::new(32);
    let plain = Simulator::new(SimConfig::new(4, 32, 8)).run(&pat, &map);
    for lines in [1usize, 4, 64] {
        let cached =
            Simulator::new(SimConfig::new(4, 32, 8).with_bank_cache(lines, 2)).run(&pat, &map);
        assert!(cached.cycles <= plain.cycles, "lines={lines}");
    }
}

#[test]
fn hit_delay_equal_to_bank_delay_changes_nothing() {
    let mut pat = AccessPattern::new(2);
    for i in 0..500u64 {
        pat.push(Request::write((i % 2) as usize, i % 13));
    }
    let map = Interleaved::new(8);
    let plain = Simulator::new(SimConfig::new(2, 8, 6)).run(&pat, &map);
    let degenerate = Simulator::new(SimConfig::new(2, 8, 6).with_bank_cache(4, 6)).run(&pat, &map);
    assert_eq!(plain.cycles, degenerate.cycles);
}

#[test]
#[should_panic(expected = "use Simulator::run")]
fn run_streams_rejects_cache_configs() {
    let sim = Simulator::new(SimConfig::new(1, 2, 4).with_bank_cache(2, 1));
    let _ = sim.run_streams(vec![vec![0, 1]]);
}

#[test]
#[should_panic(expected = "not be slower")]
fn hit_slower_than_bank_rejected() {
    let _ = SimConfig::new(1, 2, 4).with_bank_cache(2, 5);
}

mod strip_mining {
    use dxbsp_core::{AccessPattern, Interleaved};
    use dxbsp_machine::{SimConfig, Simulator};

    #[test]
    fn strip_startup_charged_between_strips() {
        // 8 conflict-free requests, strips of 4, startup 10, g=1, d=1:
        // issues at 0..3 then 14..17; last completes at 18.
        let cfg = SimConfig::new(1, 8, 1).with_strip_mining(4, 10);
        let sim = Simulator::new(cfg);
        let addrs: Vec<u64> = (0..8).collect();
        let res = sim.run(&AccessPattern::scatter(1, &addrs), &Interleaved::new(8));
        assert_eq!(res.cycles, 18);
    }

    #[test]
    fn single_strip_has_no_overhead() {
        let plain = SimConfig::new(1, 8, 1);
        let strip = plain.clone().with_strip_mining(64, 50);
        let addrs: Vec<u64> = (0..8).collect();
        let pat = AccessPattern::scatter(1, &addrs);
        let map = Interleaved::new(8);
        let a = Simulator::new(plain).run(&pat, &map);
        let b = Simulator::new(strip).run(&pat, &map);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn strip_mining_matches_reference() {
        let cfg = SimConfig::new(3, 12, 5).with_latency(2).with_window(3).with_strip_mining(4, 7);
        let mut pat = AccessPattern::new(3);
        for i in 0..60u64 {
            pat.push(dxbsp_core::Request::write((i % 3) as usize, i * 11 % 23));
        }
        let map = Interleaved::new(12);
        let fast = Simulator::new(cfg.clone()).run(&pat, &map);
        let slow = dxbsp_machine::run_reference(&cfg, &pat, &map);
        assert_eq!(fast.cycles, slow.cycles);
    }

    #[test]
    fn strip_overhead_scales_inverse_to_vector_length() {
        // Shorter strips pay the startup more often.
        let addrs: Vec<u64> = (0..1024).collect();
        let pat = AccessPattern::scatter(1, &addrs);
        let map = Interleaved::new(64);
        let mut last = 0u64;
        for vl in [256usize, 64, 16, 4] {
            let cfg = SimConfig::new(1, 64, 1).with_strip_mining(vl, 20);
            let cycles = Simulator::new(cfg).run(&pat, &map).cycles;
            assert!(cycles > last, "vl={vl}");
            last = cycles;
        }
    }
}

mod event_log {
    use dxbsp_core::{AccessPattern, Interleaved};
    use dxbsp_machine::{SimConfig, Simulator};

    #[test]
    fn events_off_by_default() {
        let sim = Simulator::new(SimConfig::new(2, 8, 6));
        let res = sim.run(&AccessPattern::scatter(2, &[1, 2, 3]), &Interleaved::new(8));
        assert!(res.events.is_empty());
    }

    #[test]
    fn events_cover_every_request_consistently() {
        let cfg = SimConfig::new(2, 8, 6).with_latency(3).with_event_log();
        let sim = Simulator::new(cfg);
        let addrs: Vec<u64> = (0..20).map(|i| i % 5).collect();
        let pat = AccessPattern::scatter(2, &addrs);
        let res = sim.run(&pat, &Interleaved::new(8));
        assert_eq!(res.events.len(), 20);
        for e in &res.events {
            assert!(e.proc < 2);
            assert!(e.bank < 8);
            // issue → (latency) → start → (d) → end, within the run.
            assert!(e.start >= e.issued + 3, "{e:?}");
            assert_eq!(e.end, e.start + 6, "{e:?}");
            assert!(e.end + 3 <= res.cycles, "{e:?} vs cycles {}", res.cycles);
        }
        // Per-bank service intervals never overlap.
        for b in 0..8 {
            let mut spans: Vec<(u64, u64)> =
                res.events.iter().filter(|e| e.bank == b).map(|e| (e.start, e.end)).collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[1].0 >= w[0].1, "bank {b} overlap: {w:?}");
            }
        }
        // Busy-cycle stats agree with the event log.
        for (b, stat) in res.banks.iter().enumerate() {
            let from_events: u64 =
                res.events.iter().filter(|e| e.bank == b).map(|e| e.end - e.start).sum();
            assert_eq!(stat.busy_cycles, from_events);
        }
    }

    #[test]
    fn hot_bank_events_serialize_back_to_back() {
        let cfg = SimConfig::new(1, 4, 5).with_event_log();
        let sim = Simulator::new(cfg);
        let res = sim.run(&AccessPattern::scatter(1, &[0u64; 6]), &Interleaved::new(4));
        let mut starts: Vec<u64> = res.events.iter().map(|e| e.start).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![0, 5, 10, 15, 20, 25]);
    }
}
