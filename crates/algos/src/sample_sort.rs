//! Sample sort with QRQW splitter lookup.
//!
//! The paper's binary-search experiment motivates exactly this use:
//! "binary searching is an important substep in several algorithms for
//! sorting and merging (e.g. \[RV87\])". Sample sort is that algorithm:
//!
//! 1. **sample** — pick `s·buckets` random keys, sort them (small), and
//!    keep every `s`-th as a splitter;
//! 2. **locate** — every key binary-searches the splitter tree for its
//!    bucket: the QRQW replicated-tree search of
//!    [`crate::binary_search`] (contention bounded by replication);
//! 3. **distribute** — scatter keys to their buckets (contention-free
//!    destinations after a counting scan);
//! 4. **local sort** — each bucket sorts locally (charged as local
//!    work; buckets are near-even w.h.p. thanks to the sample).
//!
//! Against the EREW radix sort, sample sort reads each key O(lg
//! buckets) times instead of O(key bits / radix bits) full passes — the
//! same "bounded contention buys fewer passes" trade the paper's §6
//! algorithms make.

use rand::Rng;

use crate::binary_search;
use crate::scan::exclusive_scan;
use crate::tracer::{TraceBuilder, Traced};

/// Statistics of a sample-sort run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleSortStats {
    /// Bucket count used.
    pub buckets: usize,
    /// Largest bucket (balance check; expected ≈ n/buckets).
    pub max_bucket: usize,
    /// Max contention of the splitter-lookup supersteps.
    pub lookup_contention: usize,
}

/// Sorts `keys` by sample sort, returning the sorted vector, run
/// statistics, and the memory trace. `oversample` keys are drawn per
/// splitter (larger = better balance, more sampling work).
///
/// # Panics
///
/// Panics if `buckets == 0` or `oversample == 0`.
#[must_use]
pub fn sample_sort_traced<R: Rng + ?Sized>(
    procs: usize,
    keys: &[u64],
    buckets: usize,
    oversample: usize,
    rng: &mut R,
) -> Traced<(Vec<u64>, SampleSortStats)> {
    let mut tb = TraceBuilder::new(procs);
    let value = sample_sort_with(&mut tb, keys, buckets, oversample, rng);
    tb.traced(value)
}

/// [`sample_sort_traced`] against a caller-supplied builder — the
/// streaming entry point (and the composition hook). The splitter
/// search's supersteps flow through the same builder as the sampling
/// and distribution phases — one contiguous stream.
///
/// # Panics
///
/// Panics if `buckets == 0` or `oversample == 0`.
pub fn sample_sort_with<R: Rng + ?Sized>(
    tb: &mut TraceBuilder,
    keys: &[u64],
    buckets: usize,
    oversample: usize,
    rng: &mut R,
) -> (Vec<u64>, SampleSortStats) {
    assert!(buckets >= 1, "need at least one bucket");
    assert!(oversample >= 1, "oversample must be positive");
    let n = keys.len();
    let procs = tb.procs();

    // 1. Sample and choose splitters (host-side scalar work on a small
    //    array; traced as a read of the sampled keys).
    let keys_arr = tb.alloc(n);
    let sample_size = if n == 0 { 0 } else { (buckets * oversample).min(n) };
    let mut sample: Vec<u64> = (0..sample_size).map(|_| keys[rng.random_range(0..n)]).collect();
    for (lane, _) in sample.iter().enumerate() {
        tb.read(lane, keys_arr + (lane % n.max(1)) as u64);
    }
    tb.local(sample_size.max(1) as u64); // the small sort
    tb.barrier("sample");
    sample.sort_unstable();
    let splitters: Vec<u64> = if sample.is_empty() {
        Vec::new()
    } else {
        (1..buckets).map(|b| sample[(b * oversample - 1).min(sample.len() - 1)]).collect()
    };

    // 2. Locate: QRQW replicated-tree search over the splitters,
    //    streamed through the same builder.
    let (ranks, lookup_contention) =
        binary_search::replicated_with(tb, &splitters, keys, 8, true, rng);
    let bucket_of: Vec<usize> = ranks.iter().map(|&r| r as usize).collect();

    // 3. Distribute: counting scan then scatter to distinct slots.
    let out_arr = tb.alloc(n);
    let mut counts = vec![0usize; buckets];
    for &b in &bucket_of {
        counts[b] += 1;
    }
    let mut offsets = exclusive_scan(&counts, 0, |a, b| a + b);
    let mut out = vec![0u64; n];
    for (lane, (&k, &b)) in keys.iter().zip(&bucket_of).enumerate() {
        let dest = offsets[b];
        offsets[b] += 1;
        out[dest] = k;
        tb.read(lane, keys_arr + lane as u64);
        tb.write(lane, out_arr + dest as u64);
    }
    tb.barrier("distribute");

    // 4. Local sorts: each processor sorts its buckets in place —
    //    charged as local work plus one read+write sweep.
    let max_bucket = counts.iter().copied().max().unwrap_or(0);
    let mut start = 0usize;
    for &c in &counts {
        out[start..start + c].sort_unstable();
        start += c;
    }
    tb.sweep(out_arr, n, false);
    tb.barrier("local-sort-read");
    tb.sweep(out_arr, n, true);
    let per_proc = n.div_ceil(procs).max(2);
    tb.local((per_proc as u64) * (usize::BITS - per_proc.leading_zeros()) as u64);
    tb.barrier("local-sort-write");

    (out, SampleSortStats { buckets, max_bucket, lookup_contention })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0..1u64 << 40)).collect()
    }

    #[test]
    fn sorts_random_keys() {
        let keys = random_keys(5000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let t = sample_sort_traced(8, &keys, 16, 8, &mut rng);
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(t.value.0, expect);
    }

    #[test]
    fn handles_duplicates_and_tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        for keys in [vec![], vec![7], vec![5, 5, 5, 5], vec![3, 1, 2]] {
            let t = sample_sort_traced(4, &keys, 4, 2, &mut rng);
            let mut expect = keys;
            expect.sort_unstable();
            assert_eq!(t.value.0, expect);
        }
    }

    #[test]
    fn buckets_are_balanced_with_oversampling() {
        let keys = random_keys(16 * 1024, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let t = sample_sort_traced(8, &keys, 32, 16, &mut rng);
        let stats = &t.value.1;
        let even = keys.len() / stats.buckets;
        assert!(stats.max_bucket < 3 * even, "max bucket {} vs even {even}", stats.max_bucket);
    }

    #[test]
    fn lookup_contention_is_bounded_by_replication() {
        let keys = random_keys(8 * 1024, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let t = sample_sort_traced(8, &keys, 64, 8, &mut rng);
        // Target contention 8 in the replicated search; realized max is
        // a balls-in-bins max over copies.
        assert!(
            t.value.1.lookup_contention <= 64,
            "lookup contention {}",
            t.value.1.lookup_contention
        );
    }

    #[test]
    fn distribution_step_is_contention_free() {
        let keys = random_keys(2048, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let t = sample_sort_traced(8, &keys, 16, 8, &mut rng);
        let dist = t.trace.iter().find(|s| s.label == "distribute").unwrap();
        assert_eq!(dist.pattern.contention_profile().max_location_contention, 1);
    }

    #[test]
    fn fewer_memory_passes_than_radix_sort() {
        use crate::tracer::trace_requests;
        let keys = random_keys(8 * 1024, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let sample = sample_sort_traced(8, &keys, 32, 8, &mut rng);
        let radix = crate::radix_sort::sort_traced(8, &keys, 8);
        // 40-bit keys at 8-bit digits = 5 radix passes of 2 sweeps each;
        // sample sort touches each key ~lg(32)+constant times.
        assert!(
            trace_requests(&sample.trace) < trace_requests(&radix.trace),
            "sample {} vs radix {}",
            trace_requests(&sample.trace),
            trace_requests(&radix.trace)
        );
    }
}
