//! Prefix sums and segmented scans.
//!
//! Scans are the vectorization substrate of the paper's code: radix
//! sort ranks with them, SpMV sums each row with a *segmented* scan
//! \[BHZ93\], and the dart-throwing permutation packs survivors with
//! them. Their memory pattern is the friendly case — dense sweeps with
//! no location contention (EREW) — which is exactly why the gather and
//! scatter steps of the surrounding algorithms dominate contention.

use crate::tracer::TraceBuilder;

/// Exclusive scan: `out[i] = id ⊕ xs[0] ⊕ … ⊕ xs[i−1]`.
pub fn exclusive_scan<T: Copy, F: Fn(T, T) -> T>(xs: &[T], id: T, op: F) -> Vec<T> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = id;
    for &x in xs {
        out.push(acc);
        acc = op(acc, x);
    }
    out
}

/// Inclusive scan: `out[i] = xs[0] ⊕ … ⊕ xs[i]`.
pub fn inclusive_scan<T: Copy, F: Fn(T, T) -> T>(xs: &[T], id: T, op: F) -> Vec<T> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = id;
    for &x in xs {
        acc = op(acc, x);
        out.push(acc);
    }
    out
}

/// Segmented inclusive scan: the scan restarts wherever
/// `heads[i]` is true (element `i` begins a new segment).
///
/// # Panics
///
/// Panics if the flag vector length differs from the value length.
pub fn segmented_inclusive_scan<T: Copy, F: Fn(T, T) -> T>(
    xs: &[T],
    heads: &[bool],
    id: T,
    op: F,
) -> Vec<T> {
    assert_eq!(xs.len(), heads.len(), "flags/values length mismatch");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = id;
    for (i, &x) in xs.iter().enumerate() {
        acc = if heads[i] { x } else { op(acc, x) };
        out.push(acc);
    }
    out
}

/// Sum of the last element of each segment (the "row totals" SpMV
/// extracts after its segmented scan).
pub fn segment_totals<T: Copy, F: Fn(T, T) -> T>(xs: &[T], heads: &[bool], id: T, op: F) -> Vec<T> {
    let scanned = segmented_inclusive_scan(xs, heads, id, op);
    let mut out = Vec::new();
    for i in 0..xs.len() {
        let last_of_segment = i + 1 == xs.len() || heads[i + 1];
        if last_of_segment {
            out.push(scanned[i]);
        }
    }
    out
}

/// Records the access pattern of a segmented two-pass scan: like
/// [`trace_scan`] but each element also reads its segment flag, so the
/// traffic is `3·len` element accesses plus the combine. Still
/// contention-free — segmented scans are the reason SpMV's only
/// contended step is the gather \[BHZ93\].
pub fn trace_segmented_scan(tb: &mut TraceBuilder, base: u64, flags: u64, len: usize, label: &str) {
    for i in 0..len {
        tb.read(i, base + i as u64);
        tb.read(i, flags + i as u64);
    }
    tb.barrier(&format!("{label}:segscan-read"));
    let totals = tb.alloc(tb.procs());
    for pr in 0..tb.procs() {
        tb.write(pr, totals + pr as u64);
    }
    tb.barrier(&format!("{label}:segscan-combine"));
    for pr in 0..tb.procs() {
        tb.read(pr, totals + pr as u64);
    }
    tb.sweep(base, len, true);
    tb.barrier(&format!("{label}:segscan-write"));
}

/// Records the access pattern of a two-pass multiprocessor scan over
/// `len` elements stored at `base`: each processor scans its block
/// (read sweep), block totals combine through a small shared array, and
/// a second pass writes results (write sweep). Contention-free by
/// construction.
pub fn trace_scan(tb: &mut TraceBuilder, base: u64, len: usize, label: &str) {
    tb.sweep(base, len, false);
    tb.barrier(&format!("{label}:scan-read"));
    // Cross-processor combine: p block totals written then read.
    let totals = tb.alloc(tb.procs());
    for pr in 0..tb.procs() {
        tb.write(pr, totals + pr as u64);
    }
    tb.barrier(&format!("{label}:scan-combine"));
    for pr in 0..tb.procs() {
        tb.read(pr, totals + pr as u64);
    }
    tb.sweep(base, len, true);
    tb.barrier(&format!("{label}:scan-write"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_scan_of_ones_counts() {
        let out = exclusive_scan(&[1u64; 5], 0, |a, b| a + b);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn inclusive_scan_matches_running_total() {
        let out = inclusive_scan(&[3u64, 1, 4, 1, 5], 0, |a, b| a + b);
        assert_eq!(out, vec![3, 4, 8, 9, 14]);
    }

    #[test]
    fn scans_work_for_max_monoid() {
        let out = inclusive_scan(&[2i64, 9, 1, 7], i64::MIN, |a, b| a.max(b));
        assert_eq!(out, vec![2, 9, 9, 9]);
    }

    #[test]
    fn segmented_scan_restarts_at_heads() {
        let xs = [1u64, 1, 1, 1, 1, 1];
        let heads = [true, false, false, true, false, true];
        let out = segmented_inclusive_scan(&xs, &heads, 0, |a, b| a + b);
        assert_eq!(out, vec![1, 2, 3, 1, 2, 1]);
    }

    #[test]
    fn segment_totals_extracts_row_sums() {
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let heads = [true, false, true, false, false];
        let out = segment_totals(&xs, &heads, 0.0, |a, b| a + b);
        assert_eq!(out, vec![3.0, 12.0]);
    }

    #[test]
    fn segment_totals_of_singletons_is_identity() {
        let xs = [7u64, 8, 9];
        let heads = [true, true, true];
        assert_eq!(segment_totals(&xs, &heads, 0, |a, b| a + b), vec![7, 8, 9]);
    }

    #[test]
    fn empty_scans_are_empty() {
        assert!(exclusive_scan::<u64, _>(&[], 0, |a, b| a + b).is_empty());
        assert!(segmented_inclusive_scan::<u64, _>(&[], &[], 0, |a, b| a + b).is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_flags_rejected() {
        let _ = segmented_inclusive_scan(&[1u64], &[true, false], 0, |a, b| a + b);
    }

    #[test]
    fn traced_segmented_scan_is_contention_free_and_heavier() {
        use crate::tracer::{trace_max_contention, trace_requests};
        let mut tb = TraceBuilder::new(4);
        let base = tb.alloc(100);
        let flags = tb.alloc(100);
        trace_segmented_scan(&mut tb, base, flags, 100, "t");
        let trace = tb.finish();
        assert_eq!(trace_max_contention(&trace), 1);
        // 100 value reads + 100 flag reads + 100 writes + 2·p combine.
        assert_eq!(trace_requests(&trace), 308);
    }

    #[test]
    fn traced_scan_is_contention_free() {
        use crate::tracer::{trace_max_contention, trace_requests};
        let mut tb = TraceBuilder::new(4);
        let base = tb.alloc(100);
        trace_scan(&mut tb, base, 100, "t");
        let trace = tb.finish();
        assert_eq!(trace_max_contention(&trace), 1);
        // 100 reads + 100 writes + 2·p combine traffic.
        assert_eq!(trace_requests(&trace), 208);
    }
}
