//! # dxbsp-algos — the paper's algorithms with contention accounting
//!
//! Section 6 of the paper evaluates the contention behaviour of four
//! irregular algorithms on the Cray; §7 names multiprefix as future
//! work. This crate implements each algorithm twice over:
//!
//! 1. **as a computation** — a correct host implementation whose output
//!    is checked against sequential oracles, and
//! 2. **as a memory-access trace** — the per-superstep access pattern a
//!    data-parallel (vectorized) execution on `p` processors would
//!    issue, built with [`tracer::TraceBuilder`] and runnable on the
//!    `dxbsp-machine` simulator or chargeable under the `dxbsp-core`
//!    cost models.
//!
//! The two faces are produced by the same code path, so the trace is
//! the real algorithm's pattern rather than a synthetic approximation.
//!
//! Every algorithm comes as a `*_traced` function (materializes a
//! [`Traced`] value + trace) and a `*_with` sibling taking a
//! `&mut TraceBuilder`. The `_with` form is the streaming entry point:
//! hand it a [`tracer::StreamingTracer`] attached to a
//! `dxbsp_machine::SessionSink` and every superstep executes the moment
//! its barrier fires — peak memory stays O(one superstep) however long
//! the algorithm runs. It is also the composition hook: passing one
//! builder through several `_with` calls concatenates their supersteps
//! into a single stream (e.g. sample sort pipes the splitter search
//! through its own builder).
//!
//! Algorithms:
//!
//! * [`scan`] — unsegmented and segmented prefix sums (the vectorizable
//!   substrate everything else leans on);
//! * [`radix_sort`] — ZB91-style counting/radix sort with per-processor
//!   private histograms (the EREW workhorse and NAS-benchmark baseline);
//! * [`binary_search`] — the QRQW replicated-tree search of \[GMR94a\]
//!   against an EREW sort-and-merge baseline;
//! * [`random_perm`] — the QRQW dart-throwing random permutation of
//!   \[GMR94a\] against the EREW radix-sort-based baseline;
//! * [`spmv`] — CSR sparse matrix–vector multiplication in the
//!   segmented-scan formulation of \[BHZ93\];
//! * [`connected`] — Greiner's hook-and-contract connected components;
//! * [`multiprefix`] — the multiprefix operation \[She93\] (§7 extension).

pub mod binary_search;
pub mod connected;
pub mod list_ranking;
pub mod merge;
pub mod multiprefix;
pub mod radix_sort;
pub mod random_perm;
pub mod sample_sort;
pub mod scan;
pub mod scatter_gather;
pub mod spmv;
pub mod tracer;

pub use tracer::{StreamingTracer, TraceBuilder, Traced};
