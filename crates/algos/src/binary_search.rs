//! Parallel binary search: QRQW replicated-tree vs. EREW baselines
//! (paper §6, first algorithm experiment; algorithm from \[GMR94a\]).
//!
//! `n` query keys are looked up in a balanced binary search tree over
//! `m` sorted keys (an implicit tree: the "node" at each step is the
//! midpoint of the remaining range). Three variants:
//!
//! * **naive** — every query walks the shared tree; the root has
//!   location contention `n`, halving each level. Simple and fast on a
//!   CRCW abstraction, catastrophic under the queue rule.
//! * **QRQW replicated** — nodes near the top are replicated enough
//!   that expected per-copy contention is a chosen target `t`; each
//!   query picks a copy uniformly at random per level \[GMR94a\]. Depth
//!   `⌈lg m⌉` supersteps of bounded contention.
//! * **EREW** — contention is avoided outright by radix-sorting the
//!   queries, merging them with the sorted keys in one linear pass, and
//!   scattering ranks back: several full passes over the data, but
//!   location contention 1 everywhere.
//!
//! All variants return, for each query, its *lower-bound rank*: the
//! number of tree keys strictly less than the query.

use rand::Rng;

use crate::radix_sort;
use crate::tracer::{TraceBuilder, Traced};

/// Sequential oracle: lower-bound rank of each query in `sorted_keys`.
///
/// # Panics
///
/// Panics if `sorted_keys` is not sorted.
#[must_use]
pub fn ranks_oracle(sorted_keys: &[u64], queries: &[u64]) -> Vec<u32> {
    assert!(sorted_keys.is_sorted(), "tree keys must be sorted");
    queries.iter().map(|&q| sorted_keys.partition_point(|&k| k < q) as u32).collect()
}

/// The naive shared-tree search with its trace: one superstep per tree
/// level; the root superstep has location contention `n`.
#[must_use]
pub fn naive_traced(procs: usize, sorted_keys: &[u64], queries: &[u64]) -> Traced<Vec<u32>> {
    let mut tb = TraceBuilder::new(procs);
    let value = naive_with(&mut tb, sorted_keys, queries);
    tb.traced(value)
}

/// [`naive_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook).
pub fn naive_with(tb: &mut TraceBuilder, sorted_keys: &[u64], queries: &[u64]) -> Vec<u32> {
    let m = sorted_keys.len();
    let n = queries.len();
    let tree = tb.alloc(m);
    let out = tb.alloc(n);

    let mut lo = vec![0usize; n];
    let mut hi = vec![m; n];
    let mut level = 0usize;
    loop {
        let mut active = false;
        for i in 0..n {
            if lo[i] < hi[i] {
                active = true;
                let mid = (lo[i] + hi[i]) / 2;
                tb.read(i, tree + mid as u64);
                if sorted_keys[mid] < queries[i] {
                    lo[i] = mid + 1;
                } else {
                    hi[i] = mid;
                }
            }
        }
        if !active {
            break;
        }
        tb.barrier(&format!("level{level}"));
        level += 1;
    }
    tb.scatter(out, (0..n as u64).collect::<Vec<_>>());
    tb.barrier("store-ranks");
    lo.into_iter().map(|r| r as u32).collect()
}

/// The QRQW replicated-tree search \[GMR94a\]: level `ℓ` (with `2^ℓ`
/// possible nodes) is stored in `c_ℓ = ⌈n / (2^ℓ · t)⌉` copies, and
/// every query reads a uniformly random copy of its node, bounding
/// expected per-copy contention by the target `t`.
///
/// When `include_setup` is true the trace begins with the supersteps
/// that write the replicas (contention-free); searches that reuse a
/// replicated tree amortize that away, which is how the paper reports
/// it.
///
/// # Panics
///
/// Panics if `target_contention == 0`.
#[must_use]
pub fn replicated_traced<R: Rng + ?Sized>(
    procs: usize,
    sorted_keys: &[u64],
    queries: &[u64],
    target_contention: usize,
    include_setup: bool,
    rng: &mut R,
) -> Traced<Vec<u32>> {
    let mut tb = TraceBuilder::new(procs);
    let (value, _contention) =
        replicated_with(&mut tb, sorted_keys, queries, target_contention, include_setup, rng);
    tb.traced(value)
}

/// [`replicated_traced`] against a caller-supplied builder — the
/// streaming entry point (and the composition hook). Also returns the
/// realized maximum per-copy contention of the lookup supersteps
/// (a balls-in-bins max near the target), since a streaming caller has
/// no trace to measure it from.
///
/// # Panics
///
/// Panics if `target_contention == 0`.
pub fn replicated_with<R: Rng + ?Sized>(
    tb: &mut TraceBuilder,
    sorted_keys: &[u64],
    queries: &[u64],
    target_contention: usize,
    include_setup: bool,
    rng: &mut R,
) -> (Vec<u32>, usize) {
    assert!(target_contention >= 1, "contention target must be positive");
    let m = sorted_keys.len();
    let n = queries.len();
    let depth = (usize::BITS - m.leading_zeros()) as usize + 1;
    let copies_at = |level: usize| -> usize {
        let nodes = 1usize << level.min(62);
        n.div_ceil(nodes.saturating_mul(target_contention)).max(1)
    };

    let out = tb.alloc(n);
    // Level ℓ replica array: node `mid` copy `r` lives at
    // level_base[ℓ] + mid·c_ℓ + r.
    let level_base: Vec<u64> = (0..depth).map(|l| tb.alloc(m.max(1) * copies_at(l))).collect();

    if include_setup {
        // Write each replica once: enumerate the canonical midpoints of
        // the implicit tree level by level.
        let mut ranges = vec![(0usize, m)];
        for (l, &base) in level_base.iter().enumerate() {
            let c = copies_at(l);
            let mut lane = 0usize;
            let mut next = Vec::with_capacity(ranges.len() * 2);
            for &(lo, hi) in &ranges {
                if lo >= hi {
                    continue;
                }
                let mid = (lo + hi) / 2;
                for r in 0..c {
                    tb.write(lane, base + (mid * c + r) as u64);
                    lane += 1;
                }
                next.push((lo, mid));
                next.push((mid + 1, hi));
            }
            if lane > 0 {
                tb.barrier(&format!("setup-level{l}"));
            }
            ranges = next;
        }
    }

    let mut lo = vec![0usize; n];
    let mut hi = vec![m; n];
    let mut lookup_contention = 0usize;
    for (level, &base) in level_base.iter().enumerate() {
        let c = copies_at(level);
        let mut active = false;
        let mut reads: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for i in 0..n {
            if lo[i] < hi[i] {
                active = true;
                let mid = (lo[i] + hi[i]) / 2;
                let copy = rng.random_range(0..c as u64);
                let addr = base + (mid * c) as u64 + copy;
                tb.read(i, addr);
                let hits = reads.entry(addr).or_insert(0);
                *hits += 1;
                lookup_contention = lookup_contention.max(*hits);
                if sorted_keys[mid] < queries[i] {
                    lo[i] = mid + 1;
                } else {
                    hi[i] = mid;
                }
            }
        }
        if !active {
            break;
        }
        tb.barrier(&format!("level{level}"));
    }
    tb.scatter(out, (0..n as u64).collect::<Vec<_>>());
    tb.barrier("store-ranks");
    (lo.into_iter().map(|r| r as u32).collect(), lookup_contention)
}

/// The EREW sort-and-merge baseline: radix-sort the queries, co-rank
/// them against the sorted keys in one merge sweep, scatter the ranks
/// back to query order. Location contention 1 in every superstep.
#[must_use]
pub fn erew_traced(procs: usize, sorted_keys: &[u64], queries: &[u64]) -> Traced<Vec<u32>> {
    let mut tb = TraceBuilder::new(procs);
    let value = erew_with(&mut tb, sorted_keys, queries);
    tb.traced(value)
}

/// [`erew_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook). The query sort streams
/// through the same builder, so its supersteps are part of this
/// algorithm's bill.
pub fn erew_with(tb: &mut TraceBuilder, sorted_keys: &[u64], queries: &[u64]) -> Vec<u32> {
    let m = sorted_keys.len();
    let n = queries.len();

    let perm = radix_sort::sort_with(tb, queries, 8);
    let q_sorted = tb.alloc(n);
    let keys_arr = tb.alloc(m);
    let ranks_sorted = tb.alloc(n);
    let out = tb.alloc(n);

    // Merge sweep: read both sorted arrays once, write the rank of
    // each sorted query.
    let mut ranks = vec![0u32; n];
    let mut k = 0usize;
    for (pos, &qi) in perm.iter().enumerate() {
        let q = queries[qi as usize];
        while k < m && sorted_keys[k] < q {
            tb.read(pos, keys_arr + k as u64);
            k += 1;
        }
        tb.read(pos, q_sorted + pos as u64);
        tb.write(pos, ranks_sorted + pos as u64);
        ranks[qi as usize] = k as u32;
    }
    // Tree keys never consumed by the merge still get read once by the
    // co-ranking pass (every processor scans its block fully).
    for rest in k..m {
        tb.read(rest, keys_arr + rest as u64);
    }
    tb.barrier("merge");

    // Scatter ranks back to original query positions (distinct).
    for (pos, &qi) in perm.iter().enumerate() {
        tb.read(pos, ranks_sorted + pos as u64);
        tb.write(pos, out + u64::from(qi));
    }
    tb.barrier("unsort");

    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::trace_max_contention;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(m: usize, n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<u64> = (0..m).map(|_| rng.random_range(0..1 << 20)).collect();
        keys.sort_unstable();
        keys.dedup();
        let queries: Vec<u64> = (0..n).map(|_| rng.random_range(0..1 << 20)).collect();
        (keys, queries)
    }

    #[test]
    fn oracle_ranks_are_lower_bounds() {
        let keys = vec![10u64, 20, 30];
        assert_eq!(ranks_oracle(&keys, &[5, 10, 15, 30, 99]), vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn naive_matches_oracle() {
        let (keys, queries) = setup(300, 500, 1);
        let t = naive_traced(8, &keys, &queries);
        assert_eq!(t.value, ranks_oracle(&keys, &queries));
    }

    #[test]
    fn naive_root_contention_is_n() {
        let (keys, queries) = setup(1000, 256, 2);
        let t = naive_traced(8, &keys, &queries);
        let first = &t.trace[0].pattern;
        assert_eq!(first.contention_profile().max_location_contention, 256);
    }

    #[test]
    fn replicated_matches_oracle() {
        let (keys, queries) = setup(300, 500, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let t = replicated_traced(8, &keys, &queries, 4, true, &mut rng);
        assert_eq!(t.value, ranks_oracle(&keys, &queries));
    }

    #[test]
    fn replication_bounds_contention() {
        let (keys, queries) = setup(4096, 2048, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let target = 8;
        let t = replicated_traced(8, &keys, &queries, target, false, &mut rng);
        let worst = trace_max_contention(&t.trace);
        // Expected per-copy contention is ≤ target; the realized max is
        // a balls-in-bins maximum, well under 6× the target here.
        assert!(worst <= 6 * target, "worst contention {worst}");
        // And far below the naive algorithm's root contention.
        assert!(worst < queries.len() / 8);
    }

    #[test]
    fn setup_supersteps_are_contention_free() {
        let (keys, queries) = setup(512, 512, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let t = replicated_traced(4, &keys, &queries, 4, true, &mut rng);
        for step in t.trace.iter().filter(|s| s.label.starts_with("setup")) {
            assert_eq!(step.pattern.contention_profile().max_location_contention, 1);
        }
        assert!(t.trace.iter().any(|s| s.label.starts_with("setup")));
    }

    #[test]
    fn erew_matches_oracle() {
        let (keys, queries) = setup(300, 500, 9);
        let t = erew_traced(8, &keys, &queries);
        assert_eq!(t.value, ranks_oracle(&keys, &queries));
    }

    #[test]
    fn erew_is_contention_free_but_heavier() {
        let (keys, queries) = setup(1024, 1024, 10);
        let erew = erew_traced(8, &keys, &queries);
        assert_eq!(trace_max_contention(&erew.trace), 1);
        let mut rng = StdRng::seed_from_u64(11);
        let qrqw = replicated_traced(8, &keys, &queries, 8, false, &mut rng);
        let req = crate::tracer::trace_requests;
        // The EREW version pays the sort: strictly more memory traffic.
        assert!(req(&erew.trace) > 2 * req(&qrqw.trace));
    }

    #[test]
    fn duplicate_queries_are_handled() {
        let keys = vec![1u64, 5, 9];
        let queries = vec![5u64; 40];
        let mut rng = StdRng::seed_from_u64(12);
        for t in [
            naive_traced(4, &keys, &queries),
            replicated_traced(4, &keys, &queries, 2, false, &mut rng),
            erew_traced(4, &keys, &queries),
        ] {
            assert_eq!(t.value, vec![1u32; 40]);
        }
    }

    #[test]
    fn empty_queries_yield_empty_ranks() {
        let keys = vec![1u64, 2];
        let t = naive_traced(2, &keys, &[]);
        assert!(t.value.is_empty());
    }

    #[test]
    fn empty_tree_ranks_all_zero() {
        let t = naive_traced(2, &[], &[3, 4, 5]);
        assert_eq!(t.value, vec![0, 0, 0]);
    }
}
