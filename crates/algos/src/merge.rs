//! Parallel merging of sorted sequences (paper §7 names merging as a
//! contention-analysis target; the co-ranking scheme below is the
//! standard vectorizable one).
//!
//! Each of the `p` processors takes an even slice of the output and
//! binary-searches both inputs for its start boundary (the *co-rank*).
//! The boundary searches walk the same top-of-tree elements from every
//! processor — a small QRQW contention of at most `p` — after which
//! each processor merges its chunk with contention-free sweeps.

use crate::tracer::{TraceBuilder, Traced};

/// Sequential oracle merge.
///
/// # Panics
///
/// Panics if either input is unsorted.
#[must_use]
pub fn merge_oracle(a: &[u64], b: &[u64]) -> Vec<u64> {
    assert!(a.is_sorted(), "input a must be sorted");
    assert!(b.is_sorted(), "input b must be sorted");
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Co-rank: the split of `a`/`b` contributing the first `k` outputs —
/// returns `(i, j)` with `i + j = k` such that `a[..i]` and `b[..j]`
/// are exactly the `k` smallest elements (ties resolved `a`-first).
fn co_rank(a: &[u64], b: &[u64], k: usize) -> (usize, usize) {
    let mut lo = k.saturating_sub(b.len());
    let mut hi = k.min(a.len());
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = k - i;
        if j > 0 && i < a.len() && b[j - 1] > a[i] {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    let mut i = lo;
    // Tie polish: prefer taking equal elements from `a`.
    while i < a.len() && i < k {
        let j = k - i;
        if j == 0 {
            break;
        }
        if a[i] <= b[j - 1] {
            i += 1;
        } else {
            break;
        }
    }
    (i, k - i)
}

/// Parallel co-ranking merge with its memory trace.
#[must_use]
pub fn merge_traced(procs: usize, a: &[u64], b: &[u64]) -> Traced<Vec<u64>> {
    let mut tb = TraceBuilder::new(procs);
    let value = merge_with(&mut tb, a, b);
    tb.traced(value)
}

/// [`merge_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook).
///
/// # Panics
///
/// Panics if either input is unsorted.
pub fn merge_with(tb: &mut TraceBuilder, a: &[u64], b: &[u64]) -> Vec<u64> {
    assert!(a.is_sorted(), "input a must be sorted");
    assert!(b.is_sorted(), "input b must be sorted");
    let total = a.len() + b.len();
    let procs = tb.procs();
    let a_arr = tb.alloc(a.len());
    let b_arr = tb.alloc(b.len());
    let out_arr = tb.alloc(total);

    // Boundary search: every processor binary-searches both inputs.
    // The probe sequences overlap near the roots — contention ≤ p.
    let chunk = total.div_ceil(procs.max(1));
    let mut bounds = Vec::with_capacity(procs + 1);
    bounds.push((0usize, 0usize));
    for pr in 1..procs {
        let k = (pr * chunk).min(total);
        let (i, j) = co_rank(a, b, k);
        // Trace the probes of the real binary search over `a`.
        let (mut lo, mut hi) = (k.saturating_sub(b.len()), k.min(a.len()));
        while lo < hi {
            let mid = (lo + hi) / 2;
            tb.read(pr, a_arr + mid as u64);
            if k - mid > 0 && b[k - mid - 1] > a[mid] {
                tb.read(pr, b_arr + (k - mid - 1) as u64);
                lo = mid + 1;
            } else {
                if k > mid && k - mid <= b.len() && k - mid > 0 {
                    tb.read(pr, b_arr + (k - mid - 1) as u64);
                }
                hi = mid;
            }
        }
        bounds.push((i, j));
    }
    bounds.push((a.len(), b.len()));
    tb.barrier("co-rank");

    // Chunk merges: sweeps over disjoint slices, distinct outputs.
    let mut out = vec![0u64; total];
    for pr in 0..procs {
        let (ai, bi) = bounds[pr];
        let (ae, be) = bounds[pr + 1];
        let (mut i, mut j) = (ai, bi);
        let mut pos = ai + bi;
        while i < ae || j < be {
            let take_a = j >= be || (i < ae && a[i] <= b[j]);
            if take_a {
                tb.read(pr, a_arr + i as u64);
                out[pos] = a[i];
                i += 1;
            } else {
                tb.read(pr, b_arr + j as u64);
                out[pos] = b[j];
                j += 1;
            }
            tb.write(pr, out_arr + pos as u64);
            pos += 1;
        }
    }
    tb.barrier("chunk-merge");

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::trace_max_contention;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sorted(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v: Vec<u64> = (0..n).map(|_| rng.random_range(0..10_000)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn oracle_merges() {
        assert_eq!(merge_oracle(&[1, 3, 5], &[2, 4]), vec![1, 2, 3, 4, 5]);
        assert_eq!(merge_oracle(&[], &[7]), vec![7]);
        assert_eq!(merge_oracle(&[7], &[]), vec![7]);
    }

    #[test]
    fn co_rank_splits_exactly() {
        let a = [1u64, 3, 5, 7];
        let b = [2u64, 4, 6, 8];
        for k in 0..=8 {
            let (i, j) = co_rank(&a, &b, k);
            assert_eq!(i + j, k);
            let mut pieces: Vec<u64> = a[..i].iter().chain(&b[..j]).copied().collect();
            pieces.sort_unstable();
            let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
            all.sort_unstable();
            assert_eq!(pieces, all[..k].to_vec(), "k={k}");
        }
    }

    #[test]
    fn parallel_merge_matches_oracle() {
        for (na, nb, procs) in [(100, 200, 8), (1000, 1000, 8), (5, 5000, 4), (777, 0, 3)] {
            let a = sorted(na, na as u64);
            let b = sorted(nb, nb as u64 + 1);
            let t = merge_traced(procs, &a, &b);
            assert_eq!(t.value, merge_oracle(&a, &b), "na={na} nb={nb} p={procs}");
        }
    }

    #[test]
    fn duplicates_across_inputs_are_fine() {
        let a = vec![5u64; 100];
        let b = vec![5u64; 100];
        let t = merge_traced(8, &a, &b);
        assert_eq!(t.value, vec![5u64; 200]);
    }

    #[test]
    fn boundary_search_contention_is_at_most_p() {
        let a = sorted(4096, 1);
        let b = sorted(4096, 2);
        let procs = 8;
        let t = merge_traced(procs, &a, &b);
        let co_rank_step = t.trace.iter().find(|s| s.label == "co-rank").unwrap();
        let k = co_rank_step.pattern.contention_profile().max_location_contention;
        assert!(k <= procs, "co-rank contention {k} > p");
        // Chunk merge is contention-free.
        let merge_step = t.trace.iter().find(|s| s.label == "chunk-merge").unwrap();
        assert_eq!(merge_step.pattern.contention_profile().max_location_contention, 1);
        let _ = trace_max_contention(&t.trace);
    }

    #[test]
    fn single_processor_degenerates_to_serial() {
        let a = sorted(50, 3);
        let b = sorted(60, 4);
        let t = merge_traced(1, &a, &b);
        assert_eq!(t.value, merge_oracle(&a, &b));
    }
}
