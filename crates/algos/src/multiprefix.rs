//! Multiprefix (paper §7: named future work, implemented here as the
//! extension; operation from \[She93\]).
//!
//! `multiprefix(keys, values)` computes, for each element `i`, the sum
//! of `values[j]` over all earlier elements `j < i` with
//! `keys[j] == keys[i]` — a per-key exclusive prefix sum. It is the
//! core of histogramming and radix-style ranking, and its memory
//! behaviour is exactly the paper's concern: a direct implementation
//! scatters into per-key accumulators with location contention equal to
//! the heaviest key's multiplicity, while a sort-based implementation
//! is contention-free but pays the full sort.
//!
//! Both are provided, mirroring the QRQW-vs-EREW comparisons of §6.

use crate::radix_sort;
use crate::tracer::{TraceBuilder, Traced};

/// Sequential oracle.
#[must_use]
pub fn multiprefix_oracle(keys: &[u64], values: &[u64]) -> Vec<u64> {
    assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
    let mut acc: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    keys.iter()
        .zip(values)
        .map(|(&k, &v)| {
            let e = acc.entry(k).or_insert(0);
            let before = *e;
            *e += v;
            before
        })
        .collect()
}

/// Direct (QRQW) multiprefix: elements scatter-add into one shared
/// accumulator per key. Each element reads and writes its key's cell;
/// the queue at a hot key serializes — contention equals the key's
/// multiplicity, which the QRQW model charges and the (d,x)-BSP prices
/// at `d` per queued request.
#[must_use]
pub fn direct_traced(procs: usize, keys: &[u64], values: &[u64]) -> Traced<Vec<u64>> {
    let mut tb = TraceBuilder::new(procs);
    let value = direct_with(&mut tb, keys, values);
    tb.traced(value)
}

/// [`direct_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook).
///
/// # Panics
///
/// Panics if `keys.len() != values.len()`.
pub fn direct_with(tb: &mut TraceBuilder, keys: &[u64], values: &[u64]) -> Vec<u64> {
    assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
    let n = keys.len();
    // Accumulator cells indexed by key (virtual address space: the key
    // itself offsets into a table sized by the key universe).
    let table = tb.alloc(0);
    let out = tb.alloc(n);

    for (lane, &k) in keys.iter().enumerate() {
        tb.read(lane, table + k);
        tb.write(lane, table + k);
    }
    tb.barrier("scatter-add");
    tb.scatter(out, (0..n as u64).collect::<Vec<_>>());
    tb.barrier("store");

    multiprefix_oracle(keys, values)
}

/// Sort-based (EREW) multiprefix: stable radix sort by key brings equal
/// keys together; a segmented scan then computes the per-key prefix
/// sums; an unscatter returns them to input order. Contention-free.
#[must_use]
pub fn sorted_traced(procs: usize, keys: &[u64], values: &[u64]) -> Traced<Vec<u64>> {
    let mut tb = TraceBuilder::new(procs);
    let value = sorted_with(&mut tb, keys, values);
    tb.traced(value)
}

/// [`sorted_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook). The sort's supersteps flow
/// through the same builder as the scan's — one contiguous stream.
///
/// # Panics
///
/// Panics if `keys.len() != values.len()`.
pub fn sorted_with(tb: &mut TraceBuilder, keys: &[u64], values: &[u64]) -> Vec<u64> {
    assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
    let n = keys.len();
    let perm = radix_sort::sort_with(tb, keys, 8);

    let vals_sorted = tb.alloc(n);
    let scanned = tb.alloc(n);
    let out = tb.alloc(n);

    // Gather values into sorted order (destinations distinct).
    tb.sweep(vals_sorted, n, true);
    tb.barrier("permute-values");

    // Segmented exclusive scan over equal-key runs (dense sweeps).
    tb.sweep(vals_sorted, n, false);
    tb.sweep(scanned, n, true);
    tb.barrier("segmented-scan");

    // Unscatter to input positions (distinct).
    let mut result = vec![0u64; n];
    let mut run_start = 0usize;
    let mut acc = 0u64;
    for pos in 0..n {
        if pos > 0 && keys[perm[pos] as usize] != keys[perm[pos - 1] as usize] {
            run_start = pos;
            acc = 0;
        }
        let _ = run_start;
        result[perm[pos] as usize] = acc;
        acc += values[perm[pos] as usize];
        tb.read(pos, scanned + pos as u64);
        tb.write(pos, out + u64::from(perm[pos]));
    }
    tb.barrier("unsort");

    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{trace_max_contention, trace_requests};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn oracle_computes_per_key_prefixes() {
        let keys = [1u64, 2, 1, 1, 2];
        let vals = [10u64, 20, 30, 40, 50];
        assert_eq!(multiprefix_oracle(&keys, &vals), vec![0, 0, 10, 40, 20]);
    }

    #[test]
    fn direct_and_sorted_agree_with_oracle() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 600;
        let keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..32)).collect();
        let vals: Vec<u64> = (0..n).map(|_| rng.random_range(0..100)).collect();
        let expect = multiprefix_oracle(&keys, &vals);
        assert_eq!(direct_traced(8, &keys, &vals).value, expect);
        assert_eq!(sorted_traced(8, &keys, &vals).value, expect);
    }

    #[test]
    fn direct_contention_equals_heaviest_key() {
        let keys = [7u64; 100];
        let vals = [1u64; 100];
        let t = direct_traced(4, &keys, &vals);
        let scatter = t.trace.iter().find(|s| s.label == "scatter-add").unwrap();
        // 100 reads + 100 writes of one cell.
        assert_eq!(scatter.pattern.contention_profile().max_location_contention, 200);
    }

    #[test]
    fn sorted_version_is_erew() {
        let mut rng = StdRng::seed_from_u64(2);
        let keys: Vec<u64> = (0..500).map(|_| rng.random_range(0..8)).collect();
        let vals = vec![1u64; 500];
        let t = sorted_traced(8, &keys, &vals);
        assert_eq!(trace_max_contention(&t.trace), 1);
    }

    #[test]
    fn direct_issues_less_traffic() {
        let mut rng = StdRng::seed_from_u64(3);
        let keys: Vec<u64> = (0..2000).map(|_| rng.random_range(0..64)).collect();
        let vals = vec![1u64; 2000];
        let direct = direct_traced(8, &keys, &vals);
        let sorted = sorted_traced(8, &keys, &vals);
        assert!(trace_requests(&direct.trace) < trace_requests(&sorted.trace));
    }

    #[test]
    fn all_distinct_keys_are_all_zero_prefix() {
        let keys: Vec<u64> = (0..50).collect();
        let vals = vec![9u64; 50];
        assert_eq!(direct_traced(4, &keys, &vals).value, vec![0u64; 50]);
    }

    #[test]
    fn empty_input_works() {
        assert!(direct_traced(2, &[], &[]).value.is_empty());
        assert!(sorted_traced(2, &[], &[]).value.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_rejected() {
        let _ = multiprefix_oracle(&[1], &[]);
    }
}
