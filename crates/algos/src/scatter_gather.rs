//! Contention-aware scatter/gather primitives.
//!
//! §3's experiments are not just validation — they prescribe remedies.
//! This module packages them as primitives a program would call:
//!
//! * [`scatter_traced`] / [`gather_traced`] — the plain operations, as
//!   one superstep each;
//! * [`gather_with_duplication_traced`] — Experiment 2's fix, driven by
//!   the model: hot source locations (those whose contention exceeds a
//!   threshold the advisor computes) are first *replicated* into
//!   scratch copies (a low-contention broadcast round), then readers
//!   spread across the copies. The primitive reports what it
//!   duplicated so the cost of the fix is visible;
//! * [`scatter_combining_traced`] — the combining-tree alternative for
//!   *reducing* scatters (sum into a hot cell): lanes aimed at one
//!   address combine pairwise in `⌈lg k⌉` low-contention rounds before
//!   a single write, trading `d·k` for `O(lg k)` extra supersteps.

use std::collections::{BTreeMap, HashMap};

use dxbsp_core::{contention_knee, MachineParams};

use crate::tracer::{TraceBuilder, Traced};

/// A plain scatter of `values[i]` to `dst[keys[i]]` (one superstep).
/// Returns the final contents of the destination's touched cells (last
/// writer per key wins, in lane order).
#[must_use]
pub fn scatter_traced(procs: usize, keys: &[u64], values: &[u64]) -> Traced<HashMap<u64, u64>> {
    let mut tb = TraceBuilder::new(procs);
    let value = scatter_with(&mut tb, keys, values);
    tb.traced(value)
}

/// [`scatter_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook).
///
/// # Panics
///
/// Panics if `keys.len() != values.len()`.
pub fn scatter_with(tb: &mut TraceBuilder, keys: &[u64], values: &[u64]) -> HashMap<u64, u64> {
    assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
    let dst = tb.alloc(0);
    let mut out = HashMap::new();
    for (lane, (&k, &v)) in keys.iter().zip(values).enumerate() {
        tb.write(lane, dst + k);
        out.insert(k, v);
    }
    tb.barrier("scatter");
    out
}

/// A plain gather of `src[keys[i]]` (one superstep). `src` is modeled
/// as a lookup table supplied by the caller.
#[must_use]
pub fn gather_traced(procs: usize, keys: &[u64], src: &HashMap<u64, u64>) -> Traced<Vec<u64>> {
    let mut tb = TraceBuilder::new(procs);
    let value = gather_with(&mut tb, keys, src);
    tb.traced(value)
}

/// [`gather_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook).
pub fn gather_with(tb: &mut TraceBuilder, keys: &[u64], src: &HashMap<u64, u64>) -> Vec<u64> {
    let base = tb.alloc(0);
    let out: Vec<u64> = keys.iter().map(|k| src.get(k).copied().unwrap_or(0)).collect();
    for (lane, &k) in keys.iter().enumerate() {
        tb.read(lane, base + k);
    }
    tb.barrier("gather");
    out
}

/// Report of what a duplication-aware gather did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicationReport {
    /// Keys that were replicated, with their copy counts.
    pub duplicated: Vec<(u64, usize)>,
    /// Contention threshold that triggered duplication.
    pub threshold: usize,
    /// Max per-copy contention after spreading.
    pub residual_contention: usize,
}

/// Gather with automatic hot-location duplication (§3 Experiment 2 as
/// an API). Keys whose multiplicity exceeds the machine's contention
/// knee are first broadcast into `⌈count/threshold⌉` scratch copies
/// (a replication superstep whose own contention is ≤ threshold, built
/// by copy-doubling), and the readers then round-robin the copies.
#[must_use]
pub fn gather_with_duplication_traced(
    m: &MachineParams,
    keys: &[u64],
    src: &HashMap<u64, u64>,
) -> Traced<(Vec<u64>, DuplicationReport)> {
    let mut tb = TraceBuilder::new(m.p);
    let value = gather_with_duplication_with(&mut tb, m, keys, src);
    tb.traced(value)
}

/// [`gather_with_duplication_traced`] against a caller-supplied builder
/// — the streaming entry point (and the composition hook).
pub fn gather_with_duplication_with(
    tb: &mut TraceBuilder,
    m: &MachineParams,
    keys: &[u64],
    src: &HashMap<u64, u64>,
) -> (Vec<u64>, DuplicationReport) {
    let n = keys.len();
    let threshold = contention_knee(m, n).max(1);
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }

    let base = tb.alloc(0);
    let copies_base = tb.alloc(0);

    // Replication: copy-doubling rounds, so round r reads the copies
    // made in round r−1 — contention per source cell stays ≤ 2 per
    // round and the number of rounds is ⌈lg copies⌉.
    // Ordered so replication lanes are assigned identically every run.
    let mut copy_count: BTreeMap<u64, usize> = BTreeMap::new();
    let mut duplicated = Vec::new();
    for (&k, &c) in counts.iter().filter(|&(_, &c)| c > threshold) {
        let copies = c.div_ceil(threshold);
        copy_count.insert(k, copies);
        duplicated.push((k, copies));
    }
    duplicated.sort_unstable();
    if !copy_count.is_empty() {
        let max_copies = copy_count.values().copied().max().unwrap_or(1);
        let mut have = 1usize;
        let mut round = 0usize;
        while have < max_copies {
            let mut lane = 0usize;
            for (&k, &copies) in &copy_count {
                let want = copies.min(2 * have);
                for new_copy in have..want {
                    // Read copy (new_copy − have), write copy new_copy.
                    tb.read(lane, copies_base + k * 1024 + (new_copy - have) as u64);
                    tb.write(lane, copies_base + k * 1024 + new_copy as u64);
                    lane += 1;
                }
            }
            round += 1;
            tb.barrier(&format!("replicate{round}"));
            have *= 2;
        }
    }

    // Gather: hot keys round-robin their copies; cold keys read the
    // original cell.
    let mut next_copy: HashMap<u64, usize> = HashMap::new();
    let mut residual: HashMap<(u64, usize), usize> = HashMap::new();
    let out: Vec<u64> = keys.iter().map(|k| src.get(k).copied().unwrap_or(0)).collect();
    for (lane, &k) in keys.iter().enumerate() {
        if let Some(&copies) = copy_count.get(&k) {
            let slot = next_copy.entry(k).or_insert(0);
            let copy = *slot % copies;
            *slot += 1;
            tb.read(lane, copies_base + k * 1024 + copy as u64);
            *residual.entry((k, copy)).or_insert(0) += 1;
        } else {
            tb.read(lane, base + k);
            *residual.entry((k, 0)).or_insert(0) += 1;
        }
    }
    tb.barrier("gather");

    let report = DuplicationReport {
        duplicated,
        threshold,
        residual_contention: residual.values().copied().max().unwrap_or(0),
    };
    (out, report)
}

/// Combining-tree *reducing* scatter: all lanes aimed at the same key
/// combine pairwise (`⌈lg k⌉` supersteps of contention ≤ 2) and a
/// single representative writes the result. Returns the per-key sums.
#[must_use]
pub fn scatter_combining_traced(
    procs: usize,
    keys: &[u64],
    values: &[u64],
) -> Traced<HashMap<u64, u64>> {
    let mut tb = TraceBuilder::new(procs);
    let value = scatter_combining_with(&mut tb, keys, values);
    tb.traced(value)
}

/// [`scatter_combining_traced`] against a caller-supplied builder — the
/// streaming entry point (and the composition hook).
///
/// # Panics
///
/// Panics if `keys.len() != values.len()`.
pub fn scatter_combining_with(
    tb: &mut TraceBuilder,
    keys: &[u64],
    values: &[u64],
) -> HashMap<u64, u64> {
    assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
    let dst = tb.alloc(0);
    let scratch = tb.alloc(keys.len());

    // Group lanes by key — ordered, so the emitted trace is identical
    // from run to run (the streaming/materialized differential relies
    // on every generation pass producing the same supersteps).
    let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (lane, &k) in keys.iter().enumerate() {
        groups.entry(k).or_default().push(lane);
    }

    // Pairwise combining rounds: lane i of a group reads lane i+half's
    // scratch cell. Every address is touched by at most one reader and
    // one writer per round.
    let mut widths: Vec<usize> = groups.values().map(Vec::len).collect();
    widths.sort_unstable();
    let max_width = widths.last().copied().unwrap_or(0);
    let mut width = max_width;
    let mut round = 0usize;
    while width > 1 {
        let half = width.div_ceil(2);
        for lanes in groups.values().filter(|l| l.len() > half) {
            for i in half..lanes.len().min(width) {
                tb.read(lanes[i - half], scratch + lanes[i] as u64);
                tb.write(lanes[i - half], scratch + lanes[i - half] as u64);
            }
        }
        round += 1;
        tb.barrier(&format!("combine{round}"));
        width = half;
    }

    // One representative write per key.
    for (lane, (&k, _)) in groups.iter().enumerate() {
        tb.write(lane, dst + k);
    }
    tb.barrier("write-roots");

    let mut sums: HashMap<u64, u64> = HashMap::new();
    for (&k, &v) in keys.iter().zip(values) {
        let e = sums.entry(k).or_insert(0);
        *e = e.wrapping_add(v);
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::trace_max_contention;

    fn j90() -> MachineParams {
        MachineParams::new(8, 1, 0, 14, 32)
    }

    fn hot_keys(n: usize, k: usize) -> Vec<u64> {
        (0..n).map(|i| if i < k { 0 } else { 1000 + i as u64 }).collect()
    }

    #[test]
    fn plain_scatter_carries_full_contention() {
        let keys = hot_keys(4096, 2048);
        let values = vec![1u64; 4096];
        let t = scatter_traced(8, &keys, &values);
        assert_eq!(trace_max_contention(&t.trace), 2048);
        assert_eq!(t.value[&0], 1);
    }

    #[test]
    fn duplication_caps_contention_at_the_knee() {
        let m = j90();
        let n = 8192;
        let keys = hot_keys(n, n / 2);
        let src: HashMap<u64, u64> = keys.iter().map(|&k| (k, k + 7)).collect();
        let t = gather_with_duplication_traced(&m, &keys, &src);
        let (values, report) = &t.value;
        // Values are right.
        assert!(values.iter().zip(&keys).all(|(&v, &k)| v == k + 7));
        // The hot key was duplicated and residual contention is near
        // the knee (round-robin may exceed it by a rounding hair).
        assert_eq!(report.duplicated.len(), 1);
        assert_eq!(report.duplicated[0].0, 0);
        assert!(report.residual_contention <= report.threshold + 1);
        // Whole-trace contention (including replication rounds) stays
        // at the knee scale, far below n/2.
        let worst = trace_max_contention(&t.trace);
        assert!(worst <= 2 * report.threshold, "worst {worst}");
    }

    #[test]
    fn duplication_leaves_cold_patterns_alone() {
        let m = j90();
        let keys: Vec<u64> = (0..1000).collect();
        let src: HashMap<u64, u64> = keys.iter().map(|&k| (k, k)).collect();
        let t = gather_with_duplication_traced(&m, &keys, &src);
        assert!(t.value.1.duplicated.is_empty());
        assert_eq!(t.trace.len(), 1, "no replication supersteps expected");
    }

    #[test]
    fn combining_scatter_sums_and_bounds_contention() {
        let keys = hot_keys(1024, 512);
        let values = vec![2u64; 1024];
        let t = scatter_combining_traced(8, &keys, &values);
        assert_eq!(t.value[&0], 1024); // 512 lanes × 2
        assert_eq!(t.value[&1512], 2);
        // Pairwise combining: contention ≤ 2 everywhere.
        assert!(trace_max_contention(&t.trace) <= 2);
        // lg(512) = 9 combining rounds plus the root write.
        assert_eq!(t.trace.len(), 10);
    }

    #[test]
    fn combining_beats_plain_scatter_under_the_model() {
        use dxbsp_core::{CostModel, Interleaved};
        use dxbsp_machine::{ModelBackend, Session};
        let m = j90();
        let map = Interleaved::new(m.banks());
        let keys = hot_keys(8192, 8192);
        let values = vec![1u64; 8192];
        let plain = scatter_traced(m.p, &keys, &values);
        let combining = scatter_combining_traced(m.p, &keys, &values);
        // Charge both traces through the engine seam (j90 has L = 0, so
        // the session total is the pure (d,x)-BSP memory charge).
        let mut session = Session::new(ModelBackend::new(m, CostModel::DxBsp));
        let pc = session.run_trace(&plain.trace, &map).total_cycles;
        let cc = session.run_trace(&combining.trace, &map).total_cycles;
        assert!(cc < pc / 10, "combining {cc} vs plain {pc}");
        assert_eq!(session.memory_cycles(), pc + cc, "session accrues both replays");
    }

    #[test]
    fn gather_values_match_plain_lookup() {
        let keys = vec![5u64, 6, 5, 7];
        let src: HashMap<u64, u64> = [(5, 50), (6, 60), (7, 70)].into_iter().collect();
        let t = gather_traced(2, &keys, &src);
        assert_eq!(t.value, vec![50, 60, 50, 70]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scatter_length_mismatch_rejected() {
        let _ = scatter_traced(2, &[1, 2], &[1]);
    }
}
