//! LSD radix sort with per-processor histograms (ZB91 style).
//!
//! This is the EREW workhorse the paper benchmarks against: the
//! vectorized radix sort of Zagha & Blelloch \[ZB91\] keeps a *private*
//! digit histogram per processor so the counting scatter has location
//! contention 1, ranks with a scan, and permutes to *distinct*
//! destinations — contention-free throughout, at the price of several
//! full passes over the data per digit.

use crate::scan::exclusive_scan;
use crate::tracer::{TraceBuilder, Traced};

/// A stable LSD radix sort of `keys`, returning the sorted permutation
/// (`out[rank] = original index`). `radix_bits` is the digit width.
///
/// # Panics
///
/// Panics if `radix_bits` is 0 or > 16.
#[must_use]
pub fn sort_permutation(keys: &[u64], radix_bits: u32) -> Vec<u32> {
    assert!((1..=16).contains(&radix_bits), "radix bits must be in 1..=16");
    let n = keys.len();
    let radix = 1usize << radix_bits;
    let mask = radix as u64 - 1;
    let passes = needed_passes(keys, radix_bits);

    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut next: Vec<u32> = vec![0; n];
    for pass in 0..passes {
        let shift = pass * radix_bits;
        let mut counts = vec![0usize; radix];
        for &i in &perm {
            let digit = ((keys[i as usize] >> shift) & mask) as usize;
            counts[digit] += 1;
        }
        let mut offsets = exclusive_scan(&counts, 0, |a, b| a + b);
        for &i in &perm {
            let digit = ((keys[i as usize] >> shift) & mask) as usize;
            next[offsets[digit]] = i;
            offsets[digit] += 1;
        }
        std::mem::swap(&mut perm, &mut next);
    }
    perm
}

/// Sorted copy of `keys` (by [`sort_permutation`]).
#[must_use]
pub fn sort(keys: &[u64], radix_bits: u32) -> Vec<u64> {
    sort_permutation(keys, radix_bits).into_iter().map(|i| keys[i as usize]).collect()
}

/// Number of digit passes needed to cover the largest key.
fn needed_passes(keys: &[u64], radix_bits: u32) -> u32 {
    let max = keys.iter().copied().max().unwrap_or(0);
    let significant = 64 - max.leading_zeros();
    significant.div_ceil(radix_bits).max(1)
}

/// [`sort_permutation`] with its memory-access trace: per pass, a
/// counting sweep into per-processor private histograms, a rank scan
/// over the `p × radix` count matrix, and a permuting scatter to
/// distinct destinations. Location contention is 1 in every superstep —
/// this is what "EREW algorithm" means operationally.
#[must_use]
pub fn sort_traced(procs: usize, keys: &[u64], radix_bits: u32) -> Traced<Vec<u32>> {
    let mut tb = TraceBuilder::new(procs);
    let value = sort_with(&mut tb, keys, radix_bits);
    tb.traced(value)
}

/// [`sort_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook).
pub fn sort_with(tb: &mut TraceBuilder, keys: &[u64], radix_bits: u32) -> Vec<u32> {
    let n = keys.len();
    let radix = 1usize << radix_bits;
    let passes = needed_passes(keys, radix_bits);
    let procs = tb.procs();
    let src = tb.alloc(n);
    let dst = tb.alloc(n);
    let hist = tb.alloc(procs * radix);
    let mask = radix as u64 - 1;

    // Mirror the host computation so the scatter destinations in the
    // trace are the real ones.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut next: Vec<u32> = vec![0; n];
    let (mut cur_base, mut nxt_base) = (src, dst);
    for pass in 0..passes {
        let shift = pass * radix_bits;
        // Count: read each key; the digit tally lives in
        // processor-private storage (registers/local memory in the
        // vectorized implementation), so it is local work, and each
        // processor writes its histogram row to shared memory once at
        // the end of the phase — one write per (processor, digit) cell.
        let mut counts = vec![0usize; radix];
        for (lane, &i) in perm.iter().enumerate() {
            let digit = ((keys[i as usize] >> shift) & mask) as usize;
            counts[digit] += 1;
            tb.read(lane, cur_base + lane as u64);
        }
        tb.local(n.div_ceil(procs) as u64);
        for cell in 0..procs * radix {
            tb.write(cell, hist + cell as u64);
        }
        tb.barrier(&format!("pass{pass}:count"));

        // Rank: scan the count matrix (p·radix elements, dense). The
        // read and write passes synchronize in between — rereading a
        // cell in the same step as its write would break the EREW rule.
        tb.sweep(hist, procs * radix, false);
        tb.barrier(&format!("pass{pass}:rank-read"));
        tb.sweep(hist, procs * radix, true);
        tb.barrier(&format!("pass{pass}:rank-write"));

        // Permute: read each element and scatter to its rank — all
        // ranks distinct by construction.
        let mut offsets = exclusive_scan(&counts, 0, |a, b| a + b);
        for (lane, &i) in perm.iter().enumerate() {
            let digit = ((keys[i as usize] >> shift) & mask) as usize;
            let dest = offsets[digit];
            offsets[digit] += 1;
            next[dest] = i;
            tb.read(lane, cur_base + lane as u64);
            tb.write(lane, nxt_base + dest as u64);
        }
        tb.barrier(&format!("pass{pass}:permute"));

        std::mem::swap(&mut perm, &mut next);
        std::mem::swap(&mut cur_base, &mut nxt_base);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::trace_max_contention;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sorts_small_example() {
        assert_eq!(
            sort(&[170, 45, 75, 90, 802, 24, 2, 66], 4),
            vec![2, 24, 45, 66, 75, 90, 170, 802]
        );
    }

    #[test]
    fn permutation_is_stable() {
        // Equal keys keep original order: indices of the three 5s
        // appear in increasing order.
        let keys = [5u64, 1, 5, 0, 5];
        let perm = sort_permutation(&keys, 4);
        assert_eq!(perm, vec![3, 1, 0, 2, 4]);
    }

    #[test]
    fn random_keys_match_std_sort() {
        let mut rng = StdRng::seed_from_u64(1);
        for radix_bits in [1u32, 4, 8, 11] {
            let keys: Vec<u64> =
                (0..2000).map(|_| rng.random::<u64>() >> rng.random_range(0..60)).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(sort(&keys, radix_bits), expect, "radix_bits={radix_bits}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(sort(&[], 8).is_empty());
        assert_eq!(sort(&[42], 8), vec![42]);
    }

    #[test]
    fn all_equal_keys_identity_permutation() {
        let perm = sort_permutation(&[9u64; 50], 8);
        assert_eq!(perm, (0..50u32).collect::<Vec<_>>());
    }

    #[test]
    fn traced_sort_matches_untraced() {
        let mut rng = StdRng::seed_from_u64(2);
        let keys: Vec<u64> = (0..500).map(|_| rng.random_range(0..10_000)).collect();
        let traced = sort_traced(8, &keys, 8);
        assert_eq!(traced.value, sort_permutation(&keys, 8));
    }

    #[test]
    fn traced_sort_is_erew() {
        let mut rng = StdRng::seed_from_u64(3);
        let keys: Vec<u64> = (0..800).map(|_| rng.random_range(0..1 << 16)).collect();
        let traced = sort_traced(8, &keys, 8);
        assert_eq!(trace_max_contention(&traced.trace), 1, "radix sort must be contention-free");
        assert!(traced.trace.len() >= 6, "two passes × three phases");
    }

    #[test]
    fn max_key_drives_pass_count() {
        assert_eq!(needed_passes(&[0], 8), 1);
        assert_eq!(needed_passes(&[255], 8), 1);
        assert_eq!(needed_passes(&[256], 8), 2);
        assert_eq!(needed_passes(&[u64::MAX], 8), 8);
    }

    #[test]
    #[should_panic(expected = "radix bits")]
    fn oversized_radix_rejected() {
        let _ = sort(&[1], 20);
    }
}
