//! Building memory-access traces alongside computations — streamed or
//! materialized.
//!
//! An algorithm instrumented with a [`TraceBuilder`] allocates its
//! arrays in a flat simulated address space, records every data-parallel
//! read/write (element `i` of an operation is issued by processor
//! `i mod p`, the round-robin assignment of a vectorized loop), and
//! cuts a superstep at every barrier. What happens at the cut is the
//! builder's mode:
//!
//! * **collecting** ([`TraceBuilder::new`]) — steps accumulate into a
//!   [`dxbsp_machine::Trace`] returned by [`finish`](StreamingTracer::finish),
//!   the materialized form tests and oracles replay at will;
//! * **streaming** ([`TraceBuilder::streaming`]) — each step is handed
//!   to an attached [`StepSink`] (typically a
//!   [`dxbsp_machine::SessionSink`] executing it on the spot) the
//!   moment the barrier fires, and the sink hands back a recycled
//!   buffer. Peak memory is O(one superstep) however long the
//!   algorithm runs, and after warm-up nothing is allocated at all.
//!
//! Both modes run the *identical* algorithm code path — same barriers,
//! same tail cut — so a streamed execution is bit-identical to
//! replaying the materialized trace (the differential tests in
//! `tests/` pin this for every algorithm in the crate).

use dxbsp_core::{AccessPattern, Request};
use dxbsp_machine::{StepSink, Trace, TraceStep};

/// A computation result together with the memory trace that produced it.
#[derive(Debug, Clone)]
pub struct Traced<T> {
    /// The algorithm's output.
    pub value: T,
    /// The per-superstep access patterns.
    pub trace: Trace,
}

/// Where finished supersteps go.
enum Mode<'s> {
    /// Accumulate into a materialized trace.
    Collect(Trace),
    /// Hand each step to the sink at the barrier; `spare` is the
    /// recycled buffer the next step is packaged in, `emitted` counts
    /// the hand-offs.
    Stream { sink: &'s mut dyn StepSink, spare: TraceStep, emitted: usize },
}

/// Records array allocations and per-superstep memory requests,
/// emitting a superstep at every barrier — into a collected trace or
/// straight into a [`StepSink`].
///
/// [`TraceBuilder`] is an alias of this type; algorithm code is written
/// against `&mut TraceBuilder` and works identically in both modes.
pub struct StreamingTracer<'s> {
    procs: usize,
    next_addr: u64,
    current: AccessPattern,
    current_local: u64,
    mode: Mode<'s>,
}

/// The historical name: every algorithm takes a `&mut TraceBuilder`.
/// A collecting builder is `TraceBuilder<'static>`; a streaming one
/// borrows its sink.
pub type TraceBuilder<'s> = StreamingTracer<'s>;

impl StreamingTracer<'static> {
    /// A collecting builder for a `procs`-processor machine.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0`.
    #[must_use]
    pub fn new(procs: usize) -> Self {
        assert!(procs >= 1, "need at least one processor");
        Self {
            procs,
            next_addr: 0,
            current: AccessPattern::new(procs),
            current_local: 0,
            mode: Mode::Collect(Vec::new()),
        }
    }
}

impl<'s> StreamingTracer<'s> {
    /// A streaming builder: every barrier hands the finished superstep
    /// to `sink` instead of collecting it.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0`.
    #[must_use]
    pub fn streaming(procs: usize, sink: &'s mut dyn StepSink) -> Self {
        assert!(procs >= 1, "need at least one processor");
        Self {
            procs,
            next_addr: 0,
            current: AccessPattern::new(procs),
            current_local: 0,
            mode: Mode::Stream { sink, spare: TraceStep::default(), emitted: 0 },
        }
    }

    /// Whether barriers stream to a sink (`true`) or collect (`false`).
    #[must_use]
    pub fn is_streaming(&self) -> bool {
        matches!(self.mode, Mode::Stream { .. })
    }

    /// Supersteps cut so far (collected or already handed to the sink).
    #[must_use]
    pub fn supersteps(&self) -> usize {
        match &self.mode {
            Mode::Collect(steps) => steps.len(),
            Mode::Stream { emitted, .. } => *emitted,
        }
    }

    /// Processor count.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Reserves `len` consecutive addresses and returns the base. A
    /// guard gap keeps distinct arrays from sharing addresses even if
    /// an algorithm indexes one element past the end.
    pub fn alloc(&mut self, len: usize) -> u64 {
        let base = self.next_addr;
        self.next_addr += len as u64 + 1;
        base
    }

    /// Records that vector lane `i` reads `addr` (processor `i mod p`).
    pub fn read(&mut self, lane: usize, addr: u64) {
        self.current.push(Request::read(lane % self.procs, addr));
    }

    /// Records that vector lane `i` writes `addr`.
    pub fn write(&mut self, lane: usize, addr: u64) {
        self.current.push(Request::write(lane % self.procs, addr));
    }

    /// Records a gather of `addrs[i] = base + idx[i]` (lane `i` reads).
    pub fn gather(&mut self, base: u64, idxs: impl IntoIterator<Item = u64>) {
        for (lane, idx) in idxs.into_iter().enumerate() {
            self.read(lane, base + idx);
        }
    }

    /// Records a scatter of lane `i` to `base + idx[i]`.
    pub fn scatter(&mut self, base: u64, idxs: impl IntoIterator<Item = u64>) {
        for (lane, idx) in idxs.into_iter().enumerate() {
            self.write(lane, base + idx);
        }
    }

    /// Records a dense element-wise pass over `len` elements of the
    /// array at `base` (lane `i` touches `base + i`): reads if `store`
    /// is false, writes otherwise.
    pub fn sweep(&mut self, base: u64, len: usize, store: bool) {
        for i in 0..len {
            if store {
                self.write(i, base + i as u64);
            } else {
                self.read(i, base + i as u64);
            }
        }
    }

    /// Charges `units` cycles of local computation to the current
    /// superstep (the per-processor maximum, as the BSP does).
    pub fn local(&mut self, units: u64) {
        self.current_local += units;
    }

    /// Ends the current superstep, labeling it. In streaming mode this
    /// is the hand-off point: the step leaves for the sink immediately
    /// and its buffers come back recycled.
    pub fn barrier(&mut self, label: &str) {
        if self.current.is_empty() && self.current_local == 0 {
            return; // empty supersteps carry no information
        }
        let local = std::mem::take(&mut self.current_local);
        match &mut self.mode {
            Mode::Collect(steps) => {
                let pattern = std::mem::replace(&mut self.current, AccessPattern::new(self.procs));
                steps.push(TraceStep::new(pattern).labeled(label).with_local_work(local));
            }
            Mode::Stream { sink, spare, emitted } => {
                // Package the step in the recycled buffer, swap the
                // buffer's old pattern in as the new current. The sink
                // recycles (clears) every buffer before handing it
                // back, so the swapped-in pattern only needs
                // re-targeting at this builder's processor count — no
                // second clear pass per barrier.
                std::mem::swap(&mut spare.pattern, &mut self.current);
                spare.local_work = local;
                spare.label.clear();
                spare.label.push_str(label);
                *spare = sink.emit(std::mem::take(spare));
                self.current.retarget(self.procs);
                *emitted += 1;
            }
        }
    }

    /// Finishes the trace (closing any open superstep with a `"tail"`
    /// barrier). Returns the collected steps; a streaming builder has
    /// already delivered every step to its sink and returns an empty
    /// trace.
    #[must_use]
    pub fn finish(mut self) -> Trace {
        self.barrier("tail");
        match self.mode {
            Mode::Collect(steps) => steps,
            Mode::Stream { .. } => Vec::new(),
        }
    }

    /// Wraps a value with the finished trace.
    #[must_use]
    pub fn traced<T>(self, value: T) -> Traced<T> {
        Traced { value, trace: self.finish() }
    }
}

impl std::fmt::Debug for StreamingTracer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingTracer")
            .field("procs", &self.procs)
            .field("next_addr", &self.next_addr)
            .field("pending_requests", &self.current.len())
            .field("streaming", &self.is_streaming())
            .field("supersteps", &self.supersteps())
            .finish_non_exhaustive()
    }
}

/// Total memory requests across a trace.
#[must_use]
pub fn trace_requests(trace: &Trace) -> usize {
    trace.iter().map(|s| s.pattern.len()).sum()
}

/// The largest per-superstep location contention across a trace.
#[must_use]
pub fn trace_max_contention(trace: &Trace) -> usize {
    trace.iter().map(|s| s.pattern.contention_profile().max_location_contention).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxbsp_machine::CollectSink;

    #[test]
    fn alloc_returns_disjoint_ranges() {
        let mut tb = TraceBuilder::new(4);
        let a = tb.alloc(10);
        let b = tb.alloc(5);
        assert!(b >= a + 10);
        let c = tb.alloc(0);
        assert!(c > b);
    }

    #[test]
    fn barriers_cut_supersteps() {
        let mut tb = TraceBuilder::new(2);
        let a = tb.alloc(4);
        tb.sweep(a, 4, false);
        tb.barrier("load");
        tb.scatter(a, [0, 0, 0]);
        tb.barrier("hot");
        let trace = tb.finish();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].label, "load");
        assert_eq!(trace[0].pattern.len(), 4);
        assert_eq!(trace[1].pattern.contention_profile().max_location_contention, 3);
    }

    #[test]
    fn empty_barriers_are_dropped() {
        let mut tb = TraceBuilder::new(2);
        tb.barrier("nothing");
        tb.barrier("still nothing");
        assert!(tb.finish().is_empty());
    }

    #[test]
    fn local_work_travels_with_the_step() {
        let mut tb = TraceBuilder::new(2);
        let a = tb.alloc(1);
        tb.write(0, a);
        tb.local(42);
        tb.barrier("compute");
        let trace = tb.finish();
        assert_eq!(trace[0].local_work, 42);
    }

    #[test]
    fn lanes_round_robin_processors() {
        let mut tb = TraceBuilder::new(3);
        let a = tb.alloc(7);
        tb.sweep(a, 7, true);
        let trace = tb.finish();
        let per_proc = trace[0].pattern.per_processor();
        assert_eq!(per_proc[0].len(), 3); // lanes 0, 3, 6
        assert_eq!(per_proc[1].len(), 2);
        assert_eq!(per_proc[2].len(), 2);
    }

    #[test]
    fn helpers_aggregate_trace_stats() {
        let mut tb = TraceBuilder::new(2);
        let a = tb.alloc(8);
        tb.gather(a, [0, 1, 1, 1]);
        tb.barrier("g");
        let trace = tb.finish();
        assert_eq!(trace_requests(&trace), 4);
        assert_eq!(trace_max_contention(&trace), 3);
    }

    #[test]
    fn traced_bundles_value_and_trace() {
        let mut tb = TraceBuilder::new(1);
        let a = tb.alloc(1);
        tb.read(0, a);
        let t = tb.traced(123u32);
        assert_eq!(t.value, 123);
        assert_eq!(trace_requests(&t.trace), 1);
    }

    /// The same builder calls, streamed into a collector, produce the
    /// identical trace a collecting builder materializes.
    #[test]
    fn streaming_and_collecting_agree_step_for_step() {
        fn drive(tb: &mut TraceBuilder) {
            let a = tb.alloc(16);
            tb.sweep(a, 16, false);
            tb.local(9);
            tb.barrier("load");
            tb.scatter(a, [0, 0, 1, 2]);
            tb.barrier("scatter");
            tb.read(0, a); // left open: finish() cuts the tail
        }

        let mut collecting = TraceBuilder::new(4);
        drive(&mut collecting);
        let materialized = collecting.finish();

        let mut sink = CollectSink::new();
        let mut streaming = TraceBuilder::streaming(4, &mut sink);
        assert!(streaming.is_streaming());
        drive(&mut streaming);
        assert!(streaming.finish().is_empty(), "streamed steps are not re-collected");
        let streamed = sink.into_trace();

        assert_eq!(streamed, materialized);
        assert_eq!(streamed.len(), 3);
        assert_eq!(streamed[2].label, "tail");
    }

    /// Streaming recycles the sink's returned buffers instead of
    /// allocating fresh patterns per barrier.
    #[test]
    fn streaming_counts_supersteps() {
        struct CountSink(usize);
        impl StepSink for CountSink {
            fn emit(&mut self, mut step: TraceStep) -> TraceStep {
                self.0 += 1;
                step.recycle();
                step
            }
        }
        let mut sink = CountSink(0);
        let mut tb = TraceBuilder::streaming(2, &mut sink);
        let a = tb.alloc(4);
        for round in 0..10 {
            tb.sweep(a, 4, round % 2 == 0);
            tb.barrier("round");
        }
        assert_eq!(tb.supersteps(), 10);
        let _ = tb.finish();
        assert_eq!(sink.0, 10, "nothing pending at finish: all steps were emitted live");
    }
}
