//! Building memory-access traces alongside computations.
//!
//! An algorithm instrumented with a [`TraceBuilder`] allocates its
//! arrays in a flat simulated address space, records every data-parallel
//! read/write (element `i` of an operation is issued by processor
//! `i mod p`, the round-robin assignment of a vectorized loop), and
//! cuts a superstep at every barrier. The result is a
//! [`dxbsp_machine::Trace`] that replays on the simulator and charges
//! under the cost models — the access pattern of the *actual* run, not
//! a model of it.

use dxbsp_core::{AccessPattern, Request};
use dxbsp_machine::{Trace, TraceStep};

/// A computation result together with the memory trace that produced it.
#[derive(Debug, Clone)]
pub struct Traced<T> {
    /// The algorithm's output.
    pub value: T,
    /// The per-superstep access patterns.
    pub trace: Trace,
}

/// Records array allocations and per-superstep memory requests.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    procs: usize,
    next_addr: u64,
    current: AccessPattern,
    current_local: u64,
    steps: Trace,
}

impl TraceBuilder {
    /// A builder for a `procs`-processor machine.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0`.
    #[must_use]
    pub fn new(procs: usize) -> Self {
        assert!(procs >= 1, "need at least one processor");
        Self {
            procs,
            next_addr: 0,
            current: AccessPattern::new(procs),
            current_local: 0,
            steps: Vec::new(),
        }
    }

    /// Processor count.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Reserves `len` consecutive addresses and returns the base. A
    /// guard gap keeps distinct arrays from sharing addresses even if
    /// an algorithm indexes one element past the end.
    pub fn alloc(&mut self, len: usize) -> u64 {
        let base = self.next_addr;
        self.next_addr += len as u64 + 1;
        base
    }

    /// Records that vector lane `i` reads `addr` (processor `i mod p`).
    pub fn read(&mut self, lane: usize, addr: u64) {
        self.current.push(Request::read(lane % self.procs, addr));
    }

    /// Records that vector lane `i` writes `addr`.
    pub fn write(&mut self, lane: usize, addr: u64) {
        self.current.push(Request::write(lane % self.procs, addr));
    }

    /// Records a gather of `addrs[i] = base + idx[i]` (lane `i` reads).
    pub fn gather(&mut self, base: u64, idxs: impl IntoIterator<Item = u64>) {
        for (lane, idx) in idxs.into_iter().enumerate() {
            self.read(lane, base + idx);
        }
    }

    /// Records a scatter of lane `i` to `base + idx[i]`.
    pub fn scatter(&mut self, base: u64, idxs: impl IntoIterator<Item = u64>) {
        for (lane, idx) in idxs.into_iter().enumerate() {
            self.write(lane, base + idx);
        }
    }

    /// Records a dense element-wise pass over `len` elements of the
    /// array at `base` (lane `i` touches `base + i`): reads if `store`
    /// is false, writes otherwise.
    pub fn sweep(&mut self, base: u64, len: usize, store: bool) {
        for i in 0..len {
            if store {
                self.write(i, base + i as u64);
            } else {
                self.read(i, base + i as u64);
            }
        }
    }

    /// Charges `units` cycles of local computation to the current
    /// superstep (the per-processor maximum, as the BSP does).
    pub fn local(&mut self, units: u64) {
        self.current_local += units;
    }

    /// Ends the current superstep, labeling it.
    pub fn barrier(&mut self, label: &str) {
        if self.current.is_empty() && self.current_local == 0 {
            return; // empty supersteps carry no information
        }
        let pattern = std::mem::replace(&mut self.current, AccessPattern::new(self.procs));
        let local = std::mem::take(&mut self.current_local);
        self.steps.push(TraceStep::new(pattern).labeled(label).with_local_work(local));
    }

    /// Finishes the trace (closing any open superstep).
    #[must_use]
    pub fn finish(mut self) -> Trace {
        self.barrier("tail");
        self.steps
    }

    /// Wraps a value with the finished trace.
    #[must_use]
    pub fn traced<T>(self, value: T) -> Traced<T> {
        Traced { value, trace: self.finish() }
    }
}

/// Total memory requests across a trace.
#[must_use]
pub fn trace_requests(trace: &Trace) -> usize {
    trace.iter().map(|s| s.pattern.len()).sum()
}

/// The largest per-superstep location contention across a trace.
#[must_use]
pub fn trace_max_contention(trace: &Trace) -> usize {
    trace.iter().map(|s| s.pattern.contention_profile().max_location_contention).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_disjoint_ranges() {
        let mut tb = TraceBuilder::new(4);
        let a = tb.alloc(10);
        let b = tb.alloc(5);
        assert!(b >= a + 10);
        let c = tb.alloc(0);
        assert!(c > b);
    }

    #[test]
    fn barriers_cut_supersteps() {
        let mut tb = TraceBuilder::new(2);
        let a = tb.alloc(4);
        tb.sweep(a, 4, false);
        tb.barrier("load");
        tb.scatter(a, [0, 0, 0]);
        tb.barrier("hot");
        let trace = tb.finish();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].label, "load");
        assert_eq!(trace[0].pattern.len(), 4);
        assert_eq!(trace[1].pattern.contention_profile().max_location_contention, 3);
    }

    #[test]
    fn empty_barriers_are_dropped() {
        let mut tb = TraceBuilder::new(2);
        tb.barrier("nothing");
        tb.barrier("still nothing");
        assert!(tb.finish().is_empty());
    }

    #[test]
    fn local_work_travels_with_the_step() {
        let mut tb = TraceBuilder::new(2);
        let a = tb.alloc(1);
        tb.write(0, a);
        tb.local(42);
        tb.barrier("compute");
        let trace = tb.finish();
        assert_eq!(trace[0].local_work, 42);
    }

    #[test]
    fn lanes_round_robin_processors() {
        let mut tb = TraceBuilder::new(3);
        let a = tb.alloc(7);
        tb.sweep(a, 7, true);
        let trace = tb.finish();
        let per_proc = trace[0].pattern.per_processor();
        assert_eq!(per_proc[0].len(), 3); // lanes 0, 3, 6
        assert_eq!(per_proc[1].len(), 2);
        assert_eq!(per_proc[2].len(), 2);
    }

    #[test]
    fn helpers_aggregate_trace_stats() {
        let mut tb = TraceBuilder::new(2);
        let a = tb.alloc(8);
        tb.gather(a, [0, 1, 1, 1]);
        tb.barrier("g");
        let trace = tb.finish();
        assert_eq!(trace_requests(&trace), 4);
        assert_eq!(trace_max_contention(&trace), 3);
    }

    #[test]
    fn traced_bundles_value_and_trace() {
        let mut tb = TraceBuilder::new(1);
        let a = tb.alloc(1);
        tb.read(0, a);
        let t = tb.traced(123u32);
        assert_eq!(t.value, 123);
        assert_eq!(trace_requests(&t.trace), 1);
    }
}
