//! List ranking by pointer jumping (paper §7 names list ranking
//! \[RM94\] as a target for contention analysis; this is the extension).
//!
//! Wyllie's algorithm: every node repeatedly adds its successor's rank
//! and jumps its successor pointer, halving the remaining distance each
//! round. The contention story is the interesting part and comes in
//! two flavours:
//!
//! * the **textbook** formulation keeps every node jumping for all
//!   `⌈lg n⌉` rounds; once a node's pointer reaches the tail it keeps
//!   re-reading the tail, so by the last round *most of the list* reads
//!   one node — contention Θ(n), invisible on a CRCW abstraction,
//!   `d·Θ(n)` on a bank-delay machine;
//! * **deactivating** finished nodes (their rank is final once their
//!   successor is the tail) keeps every round's gather targets distinct
//!   — contention O(1) per round, the kind of restructuring
//!   Reid-Miller's C90 implementation \[RM94\] relies on.
//!
//! Both are implemented; the contrast is the experiment.

use rand::Rng;

use crate::tracer::{TraceBuilder, Traced};

/// Builds a random singly linked list over nodes `0..n`: returns
/// `succ` where following `succ` from `head` visits every node once
/// and the tail points to itself.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn random_list<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (Vec<u32>, u32) {
    assert!(n >= 1, "a list needs at least one node");
    // Random visiting order via Fisher–Yates.
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut succ = vec![0u32; n];
    for w in order.windows(2) {
        succ[w[0] as usize] = w[1];
    }
    let tail = order[n - 1];
    succ[tail as usize] = tail;
    (succ, order[0])
}

/// Sequential oracle: distance (in links) from each node to the tail.
#[must_use]
pub fn ranks_oracle(succ: &[u32]) -> Vec<u32> {
    let n = succ.len();
    let mut ranks = vec![u32::MAX; n];
    for start in 0..n {
        if ranks[start] != u32::MAX {
            continue;
        }
        // Walk to a known rank or the tail, then unwind.
        let mut path = Vec::new();
        let mut v = start as u32;
        while ranks[v as usize] == u32::MAX && succ[v as usize] != v {
            path.push(v);
            v = succ[v as usize];
        }
        let mut r = if succ[v as usize] == v { 0 } else { ranks[v as usize] };
        if succ[v as usize] == v {
            ranks[v as usize] = 0;
        }
        for &u in path.iter().rev() {
            r += 1;
            ranks[u as usize] = r;
        }
    }
    ranks
}

/// Per-round statistics of a pointer-jumping run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankStats {
    /// Jump rounds executed (⌈lg n⌉ for a list).
    pub rounds: usize,
    /// Maximum gather contention per round (grows as pointers merge).
    pub contention_per_round: Vec<usize>,
}

/// Textbook Wyllie: every non-tail node jumps in every round until all
/// pointers reach the tail. Correct and `⌈lg n⌉` rounds, but the tail
/// becomes a contention hot spot — nodes that already point at it keep
/// reading it each remaining round.
#[must_use]
pub fn wyllie_naive_traced(procs: usize, succ: &[u32]) -> Traced<(Vec<u32>, RankStats)> {
    let mut tb = TraceBuilder::new(procs);
    let value = wyllie_naive_with(&mut tb, succ);
    tb.traced(value)
}

/// [`wyllie_naive_traced`] against a caller-supplied builder — the
/// streaming entry point (and the composition hook).
pub fn wyllie_naive_with(tb: &mut TraceBuilder, succ: &[u32]) -> (Vec<u32>, RankStats) {
    let n = succ.len();
    let succ_arr = tb.alloc(n);
    let rank_arr = tb.alloc(n);

    let mut s: Vec<u32> = succ.to_vec();
    let mut rank: Vec<u32> = (0..n).map(|v| u32::from(succ[v] != v as u32)).collect();
    let mut stats = RankStats { rounds: 0, contention_per_round: Vec::new() };

    while (0..n).any(|v| s[v] != s[s[v] as usize]) {
        stats.rounds += 1;
        let mut counts = std::collections::HashMap::new();
        for (v, &sv) in s.iter().enumerate() {
            if sv == v as u32 {
                continue; // the tail itself has nothing to do
            }
            tb.read(v, succ_arr + v as u64);
            tb.read(v, succ_arr + u64::from(sv));
            tb.read(v, rank_arr + u64::from(sv));
            *counts.entry(sv).or_insert(0usize) += 1;
        }
        stats.contention_per_round.push(counts.values().copied().max().unwrap_or(0) * 2);
        let snapshot_s = s.clone();
        let snapshot_r = rank.clone();
        for v in 0..n {
            if snapshot_s[v] == v as u32 {
                continue;
            }
            let sv = snapshot_s[v];
            rank[v] += snapshot_r[sv as usize];
            s[v] = snapshot_s[sv as usize];
            tb.write(v, succ_arr + v as u64);
            tb.write(v, rank_arr + v as u64);
        }
        tb.barrier(&format!("round{}", stats.rounds));
    }

    (rank, stats)
}

/// Low-contention Wyllie: nodes deactivate once their successor is the
/// tail (their rank is final). Each round's gather targets are then
/// pairwise distinct, so per-round contention is O(1) — the same work
/// and round count as the textbook version, minus the hot spot.
#[must_use]
pub fn wyllie_traced(procs: usize, succ: &[u32]) -> Traced<(Vec<u32>, RankStats)> {
    let mut tb = TraceBuilder::new(procs);
    let value = wyllie_with(&mut tb, succ);
    tb.traced(value)
}

/// [`wyllie_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook).
pub fn wyllie_with(tb: &mut TraceBuilder, succ: &[u32]) -> (Vec<u32>, RankStats) {
    let n = succ.len();
    let succ_arr = tb.alloc(n);
    let rank_arr = tb.alloc(n);

    let mut s: Vec<u32> = succ.to_vec();
    let mut rank: Vec<u32> = (0..n).map(|v| u32::from(succ[v] != v as u32)).collect();
    let mut active: Vec<u32> = (0..n as u32).filter(|&v| s[v as usize] != v).collect();
    let mut stats = RankStats { rounds: 0, contention_per_round: Vec::new() };

    while !active.is_empty() {
        stats.rounds += 1;
        // Gather succ[succ[v]] and rank[succ[v]] for every active node.
        let mut counts = std::collections::HashMap::new();
        for (lane, &v) in active.iter().enumerate() {
            let sv = s[v as usize];
            tb.read(lane, succ_arr + u64::from(v));
            tb.read(lane, succ_arr + u64::from(sv));
            tb.read(lane, rank_arr + u64::from(sv));
            *counts.entry(sv).or_insert(0usize) += 1;
        }
        stats.contention_per_round.push(counts.values().copied().max().unwrap_or(0) * 2); // two reads per target
                                                                                          // Update in lockstep (reads above are from the pre-round state).
        let snapshot_s = s.clone();
        let snapshot_r = rank.clone();
        for (lane, &v) in active.iter().enumerate() {
            let sv = snapshot_s[v as usize];
            rank[v as usize] += snapshot_r[sv as usize];
            s[v as usize] = snapshot_s[sv as usize];
            tb.write(lane, succ_arr + u64::from(v));
            tb.write(lane, rank_arr + u64::from(v));
        }
        tb.barrier(&format!("round{}", stats.rounds));
        active.retain(|&v| s[v as usize] != s[s[v as usize] as usize]);
    }

    (rank, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::trace_max_contention;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_ranks_a_simple_chain() {
        // 0 → 1 → 2 → 3 (tail).
        let succ = vec![1u32, 2, 3, 3];
        assert_eq!(ranks_oracle(&succ), vec![3, 2, 1, 0]);
    }

    #[test]
    fn random_list_visits_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let (succ, head) = random_list(100, &mut rng);
        let mut seen = [false; 100];
        let mut v = head;
        for _ in 0..100 {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
            if succ[v as usize] == v {
                break;
            }
            v = succ[v as usize];
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn wyllie_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [1usize, 2, 3, 17, 256, 1000] {
            let (succ, _) = random_list(n, &mut rng);
            let t = wyllie_traced(8, &succ);
            assert_eq!(t.value.0, ranks_oracle(&succ), "n={n}");
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        let mut rng = StdRng::seed_from_u64(3);
        let (succ, _) = random_list(4096, &mut rng);
        let t = wyllie_traced(8, &succ);
        let stats = t.value.1;
        assert!(stats.rounds <= 13, "rounds = {}", stats.rounds);
        assert!(stats.rounds >= 11, "rounds = {}", stats.rounds);
    }

    #[test]
    fn naive_wyllie_contends_at_the_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 4096;
        let (succ, _) = random_list(n, &mut rng);
        let t = wyllie_naive_traced(8, &succ);
        assert_eq!(t.value.0, ranks_oracle(&succ));
        let c = &t.value.1.contention_per_round;
        // Round 1: unique successors, contention 2. Final round: all
        // but the farthest node point at the tail.
        assert!(c[0] <= 4, "{c:?}");
        let peak = *c.iter().max().unwrap();
        assert!(peak >= n, "peak contention {peak} too low: {c:?}");
    }

    #[test]
    fn deactivation_removes_the_hot_spot() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4096;
        let (succ, _) = random_list(n, &mut rng);
        let smart = wyllie_traced(8, &succ);
        assert_eq!(smart.value.0, ranks_oracle(&succ));
        // Distinct gather targets each round: contention stays O(1).
        let peak = trace_max_contention(&smart.trace);
        assert!(peak <= 6, "deactivated Wyllie contends at {peak}");
        // Same round count as the naive version.
        let naive = wyllie_naive_traced(8, &succ);
        assert!(smart.value.1.rounds <= naive.value.1.rounds + 1);
    }

    #[test]
    fn singleton_list_is_trivial() {
        let t = wyllie_traced(2, &[0]);
        assert_eq!(t.value.0, vec![0]);
        assert_eq!(t.value.1.rounds, 0);
    }

    #[test]
    fn two_chains_rank_independently() {
        // 0→1 (tail 1); 2→3→4 (tail 4).
        let succ = vec![1u32, 1, 3, 4, 4];
        let t = wyllie_traced(4, &succ);
        assert_eq!(t.value.0, vec![1, 0, 2, 1, 0]);
    }
}
