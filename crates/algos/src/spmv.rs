//! Sparse matrix–vector multiplication via segmented scan
//! (paper §6, Figure 12; formulation from \[BHZ93\]).
//!
//! The vectorized SpMV processes all `nnz` nonzeros in lockstep:
//!
//! 1. **gather** `x[col]` for every nonzero — *the contention step*: a
//!    dense column means one entry of `x` is read by many rows at once,
//!    so location contention equals the dense column's length;
//! 2. **multiply** with the stored values (local work);
//! 3. **segmented scan** summing within each row (contention-free);
//! 4. **scatter** row totals to `y` (distinct destinations).
//!
//! Figure 12 sweeps the dense-column length and compares measured time
//! with the (d,x)-BSP prediction `max(g·nnz/p, d·nnz/(x·p), d·k)` where
//! `k` is the dense column length.

use dxbsp_workloads::CsrMatrix;

use crate::scan::trace_segmented_scan;
use crate::tracer::{TraceBuilder, Traced};

/// Parallel SpMV `y = A·x` with its memory-access trace.
///
/// # Panics
///
/// Panics if `x.len() != a.cols`.
#[must_use]
pub fn spmv_traced(procs: usize, a: &CsrMatrix, x: &[f64]) -> Traced<Vec<f64>> {
    let mut tb = TraceBuilder::new(procs);
    let value = spmv_with(&mut tb, a, x);
    tb.traced(value)
}

/// [`spmv_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook).
///
/// # Panics
///
/// Panics if `x.len() != a.cols`.
pub fn spmv_with(tb: &mut TraceBuilder, a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols, "vector length mismatch");
    let nnz = a.nnz();
    let procs = tb.procs();
    let x_arr = tb.alloc(a.cols);
    let vals = tb.alloc(nnz);
    let prods = tb.alloc(nnz);
    let flags = tb.alloc(nnz);
    let y_arr = tb.alloc(a.rows);

    // Gather x[col] for every nonzero: the contention-bearing step.
    tb.gather(x_arr, a.col_idx.iter().map(|&c| u64::from(c)));
    tb.barrier("gather-x");

    // Multiply: read the stored values, write the products.
    tb.sweep(vals, nnz, false);
    tb.sweep(prods, nnz, true);
    tb.local(nnz.div_ceil(procs) as u64);
    tb.barrier("multiply");

    // Segmented sum over rows (segment heads mark row starts).
    trace_segmented_scan(tb, prods, flags, nnz, "rowsum");

    // Scatter one total per row into y.
    tb.scatter(y_arr, (0..a.rows as u64).collect::<Vec<_>>());
    tb.barrier("scatter-y");

    a.multiply_serial(x)
}

/// The gather step's location contention: the heaviest column count.
#[must_use]
pub fn gather_contention(a: &CsrMatrix) -> usize {
    a.column_counts().into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::trace_max_contention;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn traced_result_matches_serial() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = CsrMatrix::random(60, 40, 5, &mut rng);
        let x: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let t = spmv_traced(8, &a, &x);
        let expect = a.multiply_serial(&x);
        assert_eq!(t.value.len(), 60);
        for (got, want) in t.value.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn gather_contention_tracks_dense_column() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = CsrMatrix::random_with_dense_column(2000, 100_000, 4, 1200, &mut rng);
        assert!(gather_contention(&a) >= 1200);
        let x = vec![1.0; 100_000];
        let t = spmv_traced(8, &a, &x);
        let gather = t.trace.iter().find(|s| s.label == "gather-x").unwrap();
        assert!(gather.pattern.contention_profile().max_location_contention >= 1200);
    }

    #[test]
    fn without_dense_column_contention_is_low() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = CsrMatrix::random(2000, 100_000, 4, &mut rng);
        let x = vec![1.0; 100_000];
        let t = spmv_traced(8, &a, &x);
        assert!(trace_max_contention(&t.trace) < 8);
    }

    #[test]
    fn non_gather_steps_are_contention_free() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = CsrMatrix::random_with_dense_column(500, 500, 4, 400, &mut rng);
        let x = vec![2.0; 500];
        let t = spmv_traced(4, &a, &x);
        for step in t.trace.iter().filter(|s| s.label != "gather-x") {
            assert_eq!(
                step.pattern.contention_profile().max_location_contention,
                1,
                "step {} has contention",
                step.label
            );
        }
    }

    #[test]
    fn empty_matrix_multiplies_to_empty() {
        let a = CsrMatrix::from_rows(3, &[]);
        let t = spmv_traced(2, &a, &[1.0, 2.0, 3.0]);
        assert!(t.value.is_empty());
    }
}
