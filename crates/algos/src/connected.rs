//! Connected components: Greiner's hook-and-contract algorithm
//! (paper §6, final algorithm experiment; algorithm from \[Gre94\]).
//!
//! "The algorithm consists of several phases: hooking nodes together to
//! form a forest, performing repeated shortcutting operations to
//! contract each tree to a single node, contracting the graph to form a
//! new graph that is processed recursively, and expanding the graph to
//! propagate the new labels."
//!
//! The implementation below runs those phases iteratively over a global
//! parent array (the recursion/expansion is implicit: after each
//! shortcut the parents are component representatives, so the next
//! round's relabeled edges *are* the contracted graph):
//!
//! * **hook** — each cross edge writes the smaller endpoint label into
//!   the parent of the larger; reads of the endpoint labels contend by
//!   vertex popularity, writes contend by how many edges hook onto one
//!   representative — this is where a star graph generates contention
//!   `Θ(n)`, the behaviour Figure 1 is built from;
//! * **shortcut** — pointer jumping `parent[v] ← parent[parent[v]]`
//!   until stable; the grandparent gather contends by subtree size;
//! * **relabel/pack** — rewrite edges by representative and pack out
//!   self-edges with a scan (contention-free).

use dxbsp_workloads::Graph;

use crate::scan::trace_scan;
use crate::tracer::{TraceBuilder, Traced};

/// Per-round phase statistics (for the per-phase contention table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Live (cross-component) edges entering each round.
    pub edges_per_round: Vec<usize>,
    /// Shortcut passes per round.
    pub shortcut_passes: Vec<usize>,
}

/// Whether two labelings induce the same partition of vertices.
#[must_use]
pub fn same_partition(a: &[u32], b: &[u32]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut fwd = std::collections::HashMap::new();
    let mut bwd = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

/// Greiner-style connected components with its memory-access trace.
/// Returns component labels (a representative vertex per component).
#[must_use]
pub fn connected_traced(procs: usize, g: &Graph) -> Traced<(Vec<u32>, CcStats)> {
    let mut tb = TraceBuilder::new(procs.max(1));
    let value = connected_with(&mut tb, g);
    tb.traced(value)
}

/// [`connected_traced`] against a caller-supplied builder — the
/// streaming entry point (and the composition hook).
pub fn connected_with(tb: &mut TraceBuilder, g: &Graph) -> (Vec<u32>, CcStats) {
    let n = g.n;
    let parent_arr = tb.alloc(n);
    let mut edge_arr = tb.alloc(g.m().max(1) * 2);

    let mut parent: Vec<u32> = (0..n as u32).collect();
    // Self-loops never hook and would otherwise survive round 1's
    // entry check; drop them up front like the relabel filter would.
    let mut edges: Vec<(u32, u32)> = g.edges.iter().copied().filter(|&(u, v)| u != v).collect();
    let mut stats = CcStats { rounds: 0, edges_per_round: Vec::new(), shortcut_passes: Vec::new() };

    while !edges.is_empty() {
        stats.rounds += 1;
        stats.edges_per_round.push(edges.len());
        let round = stats.rounds;

        // Hook: read both endpoint labels, write the loser's parent.
        // (Endpoints are representatives after the previous round's
        // shortcut, so reads hit the parent array directly.)
        for (lane, &(u, v)) in edges.iter().enumerate() {
            tb.read(lane, parent_arr + u64::from(u));
            tb.read(lane, parent_arr + u64::from(v));
        }
        let mut hooked = false;
        for (lane, &(u, v)) in edges.iter().enumerate() {
            let (pu, pv) = (parent[u as usize], parent[v as usize]);
            if pu != pv {
                let (lo, hi) = if pu < pv { (pu, pv) } else { (pv, pu) };
                parent[hi as usize] = lo; // races resolve arbitrarily;
                                          // larger→smaller keeps it acyclic
                tb.write(lane, parent_arr + u64::from(hi));
                hooked = true;
            }
        }
        tb.barrier(&format!("round{round}:hook"));
        debug_assert!(hooked, "live edges imply at least one hook");

        // Shortcut until every tree is a star.
        let mut passes = 0usize;
        loop {
            passes += 1;
            let mut changed = false;
            for v in 0..n {
                tb.read(v, parent_arr + v as u64);
                let p = parent[v];
                tb.read(v, parent_arr + u64::from(p));
                let gp = parent[p as usize];
                if gp != p {
                    changed = true;
                }
                parent[v] = gp;
                tb.write(v, parent_arr + v as u64);
            }
            tb.barrier(&format!("round{round}:shortcut{passes}"));
            if !changed {
                break;
            }
        }
        stats.shortcut_passes.push(passes);

        // Relabel edges by representative and pack out self-edges.
        let m = edges.len();
        for (lane, &(u, v)) in edges.iter().enumerate() {
            tb.read(lane, parent_arr + u64::from(u));
            tb.read(lane, parent_arr + u64::from(v));
        }
        tb.barrier(&format!("round{round}:relabel"));
        let survivors: Vec<(u32, u32)> = edges
            .iter()
            .map(|&(u, v)| (parent[u as usize], parent[v as usize]))
            .filter(|&(pu, pv)| pu != pv)
            .collect();
        trace_scan(tb, edge_arr, m, &format!("round{round}:pack"));
        let next_arr = tb.alloc(survivors.len().max(1) * 2);
        for (lane, _) in survivors.iter().enumerate() {
            tb.write(lane, next_arr + 2 * lane as u64);
            tb.write(lane, next_arr + 2 * lane as u64 + 1);
        }
        tb.barrier(&format!("round{round}:compact"));
        edge_arr = next_arr;
        edges = survivors;
    }

    (parent, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check(g: &Graph, procs: usize) -> (Vec<u32>, CcStats) {
        let t = connected_traced(procs, g);
        let (labels, stats) = t.value;
        assert!(same_partition(&labels, &g.components_oracle()), "partition mismatch");
        (labels, stats)
    }

    #[test]
    fn chain_contracts_in_logarithmic_rounds() {
        let (_, stats) = check(&Graph::chain(1024), 8);
        assert!(stats.rounds <= 12, "rounds = {}", stats.rounds);
    }

    #[test]
    fn star_finishes_in_one_round() {
        let (labels, stats) = check(&Graph::star(256), 8);
        assert_eq!(stats.rounds, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn grid_and_random_graphs_match_oracle() {
        let mut rng = StdRng::seed_from_u64(1);
        check(&Graph::grid(20, 17), 8);
        check(&Graph::random_gnm(2000, 8000, &mut rng), 8);
        check(&Graph::random_gnm(2000, 100, &mut rng), 8);
    }

    #[test]
    fn empty_graph_and_no_edges() {
        let (labels, stats) = check(&Graph::empty(50), 4);
        assert_eq!(stats.rounds, 0);
        assert_eq!(labels, (0..50u32).collect::<Vec<_>>());
    }

    #[test]
    fn star_hook_step_has_high_contention() {
        let g = Graph::star(512);
        let t = connected_traced(8, &g);
        let hook = t.trace.iter().find(|s| s.label == "round1:hook").unwrap();
        // Every edge reads the center's label: contention Θ(n).
        assert!(
            hook.pattern.contention_profile().max_location_contention >= 511,
            "star hook must contend at the center"
        );
    }

    #[test]
    fn chain_hook_step_has_low_contention() {
        let g = Graph::chain(512);
        let t = connected_traced(8, &g);
        let hook = t.trace.iter().find(|s| s.label == "round1:hook").unwrap();
        assert!(hook.pattern.contention_profile().max_location_contention <= 4);
    }

    #[test]
    fn same_partition_distinguishes_labelings() {
        assert!(same_partition(&[0, 0, 2], &[7, 7, 9]));
        assert!(!same_partition(&[0, 0, 2], &[7, 8, 9]));
        assert!(!same_partition(&[0, 1], &[5, 5]));
        assert!(!same_partition(&[0], &[0, 0]));
    }

    #[test]
    fn parallel_edges_and_self_loops_tolerated() {
        let g = Graph { n: 4, edges: vec![(0, 1), (0, 1), (1, 0), (2, 3)] };
        let (labels, _) = check(&g, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }
}

/// Random-mate connected components (the other family Greiner \[Gre94\]
/// compares): each round every current representative flips a coin;
/// for each live edge whose endpoints drew (head, tail), the tail
/// representative hooks onto the head representative. Coin flips
/// spread the hooks, so even a star contracts with *randomized*
/// contention — the deterministic hook-to-min's worst cases soften.
#[must_use]
pub fn random_mate_traced<R: rand::Rng + ?Sized>(
    procs: usize,
    g: &Graph,
    rng: &mut R,
) -> Traced<(Vec<u32>, CcStats)> {
    let mut tb = TraceBuilder::new(procs.max(1));
    let value = random_mate_with(&mut tb, g, rng);
    tb.traced(value)
}

/// [`random_mate_traced`] against a caller-supplied builder — the
/// streaming entry point (and the composition hook).
pub fn random_mate_with<R: rand::Rng + ?Sized>(
    tb: &mut TraceBuilder,
    g: &Graph,
    rng: &mut R,
) -> (Vec<u32>, CcStats) {
    let n = g.n;
    let parent_arr = tb.alloc(n);
    let coin_arr = tb.alloc(n);

    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut edges: Vec<(u32, u32)> = g.edges.iter().copied().filter(|&(u, v)| u != v).collect();
    let mut stats = CcStats { rounds: 0, edges_per_round: Vec::new(), shortcut_passes: Vec::new() };

    // Safety valve: random mating makes progress with probability ≥
    // 1/4 per live edge per round, so Θ(log) rounds suffice w.h.p.;
    // the bound below only trips on a broken RNG.
    let max_rounds = 8 * (usize::BITS - n.max(2).leading_zeros()) as usize + 16;

    while !edges.is_empty() {
        stats.rounds += 1;
        stats.edges_per_round.push(edges.len());
        let round = stats.rounds;
        assert!(stats.rounds <= max_rounds, "random-mate failed to converge");

        // Flip one coin per vertex (representatives read theirs; we
        // charge the full sweep, as the vectorized code would).
        let heads: Vec<bool> = (0..n).map(|_| rng.random()).collect();
        tb.sweep(coin_arr, n, true);
        tb.barrier(&format!("round{round}:flip"));

        // Hook: tail representative → head representative.
        for (lane, &(u, v)) in edges.iter().enumerate() {
            tb.read(lane, parent_arr + u64::from(u));
            tb.read(lane, parent_arr + u64::from(v));
            tb.read(lane, coin_arr + u64::from(u));
            tb.read(lane, coin_arr + u64::from(v));
        }
        for (lane, &(u, v)) in edges.iter().enumerate() {
            let (pu, pv) = (parent[u as usize], parent[v as usize]);
            if pu == pv {
                continue;
            }
            let (head, tail) = if heads[pu as usize] && !heads[pv as usize] {
                (pu, pv)
            } else if heads[pv as usize] && !heads[pu as usize] {
                (pv, pu)
            } else {
                continue;
            };
            parent[tail as usize] = head;
            tb.write(lane, parent_arr + u64::from(tail));
        }
        tb.barrier(&format!("round{round}:hook"));

        // One shortcut pass suffices: tails hooked directly onto
        // representatives, so trees have depth ≤ 2... except when a
        // tail representative was itself hooked this round; jump until
        // stable like the deterministic variant.
        let mut passes = 0usize;
        loop {
            passes += 1;
            let mut changed = false;
            for v in 0..n {
                tb.read(v, parent_arr + v as u64);
                let p = parent[v];
                tb.read(v, parent_arr + u64::from(p));
                let gp = parent[p as usize];
                if gp != p {
                    changed = true;
                }
                parent[v] = gp;
                tb.write(v, parent_arr + v as u64);
            }
            tb.barrier(&format!("round{round}:shortcut{passes}"));
            if !changed {
                break;
            }
        }
        stats.shortcut_passes.push(passes);

        // Relabel and drop internal edges.
        for (lane, &(u, v)) in edges.iter().enumerate() {
            tb.read(lane, parent_arr + u64::from(u));
            tb.read(lane, parent_arr + u64::from(v));
        }
        tb.barrier(&format!("round{round}:relabel"));
        edges = edges
            .iter()
            .map(|&(u, v)| (parent[u as usize], parent[v as usize]))
            .filter(|&(pu, pv)| pu != pv)
            .collect();
    }

    (parent, stats)
}

#[cfg(test)]
mod random_mate_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_mate_matches_oracle_on_families() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut coin = StdRng::seed_from_u64(99);
        for g in [
            Graph::chain(512),
            Graph::star(512),
            Graph::grid(20, 25),
            Graph::random_gnm(1000, 3000, &mut rng),
            Graph::random_gnm(1000, 50, &mut rng),
            Graph::empty(64),
        ] {
            let t = random_mate_traced(8, &g, &mut coin);
            assert!(same_partition(&t.value.0, &g.components_oracle()));
        }
    }

    #[test]
    fn random_mate_converges_in_logarithmic_rounds() {
        let mut coin = StdRng::seed_from_u64(7);
        let t = random_mate_traced(8, &Graph::chain(4096), &mut coin);
        assert!(t.value.1.rounds <= 40, "rounds = {}", t.value.1.rounds);
    }

    #[test]
    fn random_mate_star_spreads_hook_writes() {
        // The star still contends on *reads* of the center's label, but
        // hook writes all target distinct tails' parents — unlike
        // hook-to-min where every write lands on one cell.
        let mut coin = StdRng::seed_from_u64(11);
        let g = Graph::star(1024);
        let t = random_mate_traced(8, &g, &mut coin);
        assert!(same_partition(&t.value.0, &g.components_oracle()));
    }

    #[test]
    fn deterministic_under_fixed_coin_seed() {
        let g = Graph::grid(10, 10);
        let a = random_mate_traced(4, &g, &mut StdRng::seed_from_u64(5)).value;
        let b = random_mate_traced(4, &g, &mut StdRng::seed_from_u64(5)).value;
        assert_eq!(a, b);
    }
}
