//! Random permutation: QRQW dart-throwing vs. EREW radix-sort
//! (paper §6, Figure 11; QRQW algorithm from \[GMR94a\]).
//!
//! **QRQW darts:** each element writes its index into a random slot of
//! an array of size `⌈c·n⌉`; elements read their slot back and whoever
//! finds its own index has claimed the slot and drops out; the rest
//! retry in another round. O(lg n) rounds w.h.p.; per-round location
//! contention is the max slot collision count — small, and precisely
//! what the QRQW rule charges. A final pack (scan + scatter) compresses
//! the claimed slots into a permutation.
//!
//! **EREW baseline:** give every element a random key and radix-sort;
//! the sorted order is the permutation. Contention-free, but pays
//! several complete passes over the data (\[ZB91\]'s sort — "the fastest
//! implementation of the NAS sorting benchmark" at the time).
//!
//! The paper's observation: the dart thrower's *well-accounted* small
//! contention buys strictly less total memory traffic, so it wins over
//! a wide range of sizes.

use rand::Rng;

use crate::radix_sort;
use crate::scan::trace_scan;
use crate::tracer::{TraceBuilder, Traced};

/// Verifies that `perm` is a permutation of `0..n`.
#[must_use]
pub fn is_permutation(perm: &[u32]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &v in perm {
        let v = v as usize;
        if v >= n || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    true
}

/// Report of a dart-throwing run (for the experiment tables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DartStats {
    /// Rounds until every element claimed a slot.
    pub rounds: usize,
    /// Elements still live at the start of each round.
    pub live_per_round: Vec<usize>,
    /// Maximum slot contention in each round.
    pub contention_per_round: Vec<usize>,
}

/// QRQW dart-throwing random permutation with its trace.
///
/// `slack` is the target-array expansion `c ≥ 1` (the paper uses a
/// small constant; 1.5–2 is typical). Returns the permutation and
/// per-round statistics.
///
/// # Panics
///
/// Panics if `slack < 1.0`.
#[must_use]
pub fn darts_traced<R: Rng + ?Sized>(
    procs: usize,
    n: usize,
    slack: f64,
    rng: &mut R,
) -> Traced<(Vec<u32>, DartStats)> {
    let mut tb = TraceBuilder::new(procs);
    let value = darts_with(&mut tb, n, slack, rng);
    tb.traced(value)
}

/// [`darts_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook).
///
/// # Panics
///
/// Panics if `slack < 1.0`.
pub fn darts_with<R: Rng + ?Sized>(
    tb: &mut TraceBuilder,
    n: usize,
    slack: f64,
    rng: &mut R,
) -> (Vec<u32>, DartStats) {
    assert!(slack >= 1.0, "target array cannot be smaller than the input");
    let slots = ((n as f64 * slack).ceil() as usize).max(n);
    let target = tb.alloc(slots);
    let out = tb.alloc(n);

    // slot_owner[s] = element that claimed slot s.
    let mut slot_owner: Vec<Option<u32>> = vec![None; slots];
    let mut live: Vec<u32> = (0..n as u32).collect();
    let mut stats =
        DartStats { rounds: 0, live_per_round: Vec::new(), contention_per_round: Vec::new() };

    while !live.is_empty() {
        stats.rounds += 1;
        stats.live_per_round.push(live.len());

        // Throw: every live element scatters its index to a random
        // free-or-not slot. Later writers win the race (any arbitration
        // works; the read-back detects it either way).
        let picks: Vec<usize> = live.iter().map(|_| rng.random_range(0..slots)).collect();
        let mut round_winner: std::collections::HashMap<usize, u32> =
            std::collections::HashMap::new();
        let mut max_contention = 1usize;
        let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for (lane, (&e, &s)) in live.iter().zip(&picks).enumerate() {
            tb.write(lane, target + s as u64);
            if slot_owner[s].is_none() {
                round_winner.insert(s, e); // last write wins the cell
                let c = counts.entry(s).or_insert(0);
                *c += 1;
                max_contention = max_contention.max(*c);
            } else {
                let c = counts.entry(s).or_insert(0);
                *c += 1;
                max_contention = max_contention.max(*c);
            }
        }
        stats.contention_per_round.push(max_contention);
        tb.barrier(&format!("round{}:throw", stats.rounds));

        // Read back: every live element checks whether it won its slot.
        for (lane, &s) in picks.iter().enumerate() {
            tb.read(lane, target + s as u64);
        }
        tb.barrier(&format!("round{}:check", stats.rounds));

        let mut next_live = Vec::new();
        for (&e, &s) in live.iter().zip(&picks) {
            if slot_owner[s].is_none() && round_winner.get(&s) == Some(&e) {
                slot_owner[s] = Some(e);
            } else {
                next_live.push(e);
            }
        }
        live = next_live;
    }

    // Pack: scan the claim flags, scatter claimed indices into `out`.
    trace_scan(tb, target, slots, "pack");
    let mut perm = vec![0u32; n];
    let mut rank = 0usize;
    let mut lane = 0usize;
    for (s, owner) in slot_owner.iter().enumerate() {
        if let Some(e) = *owner {
            perm[rank] = e;
            tb.read(lane, target + s as u64);
            tb.write(lane, out + rank as u64);
            lane += 1;
            rank += 1;
        }
    }
    tb.barrier("pack:scatter");
    debug_assert_eq!(rank, n);

    (perm, stats)
}

/// EREW random permutation: random keys + radix sort. Key width is
/// `2·⌈lg n⌉` bits so duplicate keys are rare (stable sort breaks the
/// remaining ties deterministically).
#[must_use]
pub fn erew_traced<R: Rng + ?Sized>(procs: usize, n: usize, rng: &mut R) -> Traced<Vec<u32>> {
    let mut tb = TraceBuilder::new(procs);
    let value = erew_with(&mut tb, n, rng);
    tb.traced(value)
}

/// [`erew_traced`] against a caller-supplied builder — the streaming
/// entry point (and the composition hook).
pub fn erew_with<R: Rng + ?Sized>(tb: &mut TraceBuilder, n: usize, rng: &mut R) -> Vec<u32> {
    let bits = (2 * (usize::BITS - n.saturating_sub(1).leading_zeros())).clamp(4, 62);
    let keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..1u64 << bits)).collect();
    radix_sort::sort_with(tb, &keys, 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{trace_max_contention, trace_requests};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn darts_produce_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = darts_traced(8, 1000, 1.5, &mut rng);
        let (perm, stats) = t.value;
        assert!(is_permutation(&perm));
        assert!(stats.rounds >= 1);
        assert_eq!(stats.live_per_round[0], 1000);
    }

    #[test]
    fn darts_rounds_shrink_geometrically() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = darts_traced(8, 4096, 2.0, &mut rng);
        let stats = t.value.1;
        // With slack 2 at least half the elements win each round in
        // expectation; the live set never grows and the whole run ends
        // in O(lg n) rounds.
        assert!(stats.rounds < 30, "rounds = {}", stats.rounds);
        for w in stats.live_per_round.windows(2) {
            assert!(w[1] <= w[0], "live set grew: {:?}", stats.live_per_round);
        }
        assert!(
            stats.live_per_round[1] < stats.live_per_round[0] / 2,
            "first round should clear over half: {:?}",
            stats.live_per_round
        );
    }

    #[test]
    fn darts_contention_is_logarithmically_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 8192;
        let t = darts_traced(8, n, 1.5, &mut rng);
        let worst = trace_max_contention(&t.trace);
        // Balls in bins: max collision O(lg n / lg lg n) ≈ single digits.
        assert!(worst <= 16, "contention {worst}");
    }

    #[test]
    fn erew_produces_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = erew_traced(8, 1000, &mut rng);
        assert!(is_permutation(&t.value));
        assert_eq!(trace_max_contention(&t.trace), 1);
    }

    #[test]
    fn darts_issue_less_traffic_than_erew() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 8192;
        let qrqw = darts_traced(8, n, 1.5, &mut rng);
        let erew = erew_traced(8, n, &mut rng);
        assert!(
            trace_requests(&qrqw.trace) < trace_requests(&erew.trace),
            "darts {} vs erew {}",
            trace_requests(&qrqw.trace),
            trace_requests(&erew.trace)
        );
    }

    #[test]
    fn permutations_vary_with_seed() {
        let mut rng1 = StdRng::seed_from_u64(6);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = darts_traced(4, 256, 1.5, &mut rng1).value.0;
        let b = darts_traced(4, 256, 1.5, &mut rng2).value.0;
        assert_ne!(a, b);
    }

    #[test]
    fn tiny_inputs_work() {
        let mut rng = StdRng::seed_from_u64(8);
        let t = darts_traced(2, 1, 1.0, &mut rng);
        assert_eq!(t.value.0, vec![0]);
        let e = erew_traced(2, 2, &mut rng);
        assert!(is_permutation(&e.value));
    }

    #[test]
    fn is_permutation_rejects_bad_vectors() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[]));
    }

    #[test]
    #[should_panic(expected = "smaller than the input")]
    fn undersized_slack_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = darts_traced(2, 10, 0.5, &mut rng);
    }
}
