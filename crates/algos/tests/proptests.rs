//! Property tests: every algorithm against its sequential oracle, plus
//! the contention invariants that make the QRQW/EREW labels honest.

use dxbsp_algos::tracer::{trace_max_contention, TraceBuilder};
use dxbsp_algos::{
    binary_search, connected, list_ranking, merge, multiprefix, radix_sort, random_perm,
    sample_sort, scan,
};
use dxbsp_workloads::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Radix sort sorts, stably, for any radix width.
    #[test]
    fn radix_sort_matches_std(
        keys in proptest::collection::vec(0u64..1_000_000, 0..500),
        bits in 1u32..=12,
    ) {
        let sorted = radix_sort::sort(&keys, bits);
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(sorted, expect);
        // The permutation is stable: positions of equal keys ascend.
        let perm = radix_sort::sort_permutation(&keys, bits);
        for w in perm.windows(2) {
            if keys[w[0] as usize] == keys[w[1] as usize] {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    /// The traced sort computes the same permutation and stays EREW.
    #[test]
    fn traced_radix_sort_is_erew(
        keys in proptest::collection::vec(0u64..1_000_000, 0..300),
        procs in 1usize..=8,
    ) {
        let traced = radix_sort::sort_traced(procs, &keys, 8);
        prop_assert_eq!(traced.value, radix_sort::sort_permutation(&keys, 8));
        prop_assert!(trace_max_contention(&traced.trace) <= 1);
    }

    /// All three binary-search variants agree with partition_point.
    #[test]
    fn binary_search_variants_agree(
        mut keys in proptest::collection::vec(0u64..10_000, 0..200),
        queries in proptest::collection::vec(0u64..10_000, 0..200),
        seed in 0u64..1000,
    ) {
        keys.sort_unstable();
        keys.dedup();
        let oracle = binary_search::ranks_oracle(&keys, &queries);
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(&binary_search::naive_traced(4, &keys, &queries).value, &oracle);
        prop_assert_eq!(
            &binary_search::replicated_traced(4, &keys, &queries, 3, seed % 2 == 0, &mut rng).value,
            &oracle
        );
        let erew = binary_search::erew_traced(4, &keys, &queries);
        prop_assert_eq!(&erew.value, &oracle);
        prop_assert!(trace_max_contention(&erew.trace) <= 1);
    }

    /// Both permutation algorithms always produce permutations.
    #[test]
    fn permutations_are_permutations(n in 1usize..2000, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let darts = random_perm::darts_traced(4, n, 1.5, &mut rng);
        prop_assert!(random_perm::is_permutation(&darts.value.0));
        let erew = random_perm::erew_traced(4, n, &mut rng);
        prop_assert!(random_perm::is_permutation(&erew.value));
        prop_assert!(trace_max_contention(&erew.trace) <= 1);
    }

    /// Segmented scan equals a per-segment serial scan.
    #[test]
    fn segmented_scan_matches_per_segment(
        xs in proptest::collection::vec(0u64..1000, 1..200),
        head_bits in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let n = xs.len().min(head_bits.len());
        let xs = &xs[..n];
        let mut heads = head_bits[..n].to_vec();
        heads[0] = true; // first element always starts a segment
        let got = scan::segmented_inclusive_scan(xs, &heads, 0, |a, b| a + b);
        // Oracle: split into segments, scan each.
        let mut expect = Vec::with_capacity(n);
        let mut acc = 0u64;
        for i in 0..n {
            acc = if heads[i] { xs[i] } else { acc + xs[i] };
            expect.push(acc);
        }
        prop_assert_eq!(got, expect);
    }

    /// Multiprefix: direct (QRQW) and sorted (EREW) agree with the
    /// oracle, and the sorted version is contention-free.
    #[test]
    fn multiprefix_variants_agree(
        keys in proptest::collection::vec(0u64..32, 0..300),
        seed in 0u64..100,
    ) {
        let _ = seed;
        let vals: Vec<u64> = (0..keys.len() as u64).collect();
        let oracle = multiprefix::multiprefix_oracle(&keys, &vals);
        prop_assert_eq!(&multiprefix::direct_traced(4, &keys, &vals).value, &oracle);
        let sorted = multiprefix::sorted_traced(4, &keys, &vals);
        prop_assert_eq!(&sorted.value, &oracle);
        prop_assert!(trace_max_contention(&sorted.trace) <= 1);
    }

    /// Parallel merge equals the serial merge for any sorted inputs
    /// and processor count.
    #[test]
    fn merge_matches_oracle(
        mut a in proptest::collection::vec(0u64..10_000, 0..300),
        mut b in proptest::collection::vec(0u64..10_000, 0..300),
        procs in 1usize..=8,
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let t = merge::merge_traced(procs, &a, &b);
        prop_assert_eq!(t.value, merge::merge_oracle(&a, &b));
    }

    /// List ranking (both variants) matches the walk oracle.
    #[test]
    fn list_ranking_matches_oracle(n in 1usize..500, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (succ, _) = list_ranking::random_list(n, &mut rng);
        let oracle = list_ranking::ranks_oracle(&succ);
        prop_assert_eq!(&list_ranking::wyllie_traced(4, &succ).value.0, &oracle);
        prop_assert_eq!(&list_ranking::wyllie_naive_traced(4, &succ).value.0, &oracle);
    }

    /// Both CC variants induce the union-find partition on arbitrary
    /// edge lists (self-loops and duplicates included).
    #[test]
    fn connected_components_match_union_find(
        n in 1usize..200,
        raw_edges in proptest::collection::vec((0usize..200, 0usize..200), 0..400),
        seed in 0u64..1000,
    ) {
        let edges: Vec<(u32, u32)> = raw_edges
            .into_iter()
            .map(|(u, v)| ((u % n) as u32, (v % n) as u32))
            .collect();
        let g = Graph { n, edges };
        let oracle = g.components_oracle();
        let det = connected::connected_traced(4, &g);
        prop_assert!(connected::same_partition(&det.value.0, &oracle));
        let mut rng = StdRng::seed_from_u64(seed);
        let rnd = connected::random_mate_traced(4, &g, &mut rng);
        prop_assert!(connected::same_partition(&rnd.value.0, &oracle));
    }

    /// Sample sort sorts at every oversampling ratio, and bucket
    /// balance is pinned across ratios: the largest bucket always
    /// respects the pigeonhole floor, and with heavy oversampling the
    /// median-of-5 largest bucket stays within 4x of perfectly even on
    /// uniform keys (the median drowns individual sampling flukes).
    #[test]
    fn sample_sort_bucket_balance_across_oversampling(
        n in 512usize..1536,
        buckets in 2usize..=16,
        oversample in 1usize..=16,
        seed in 0u64..1000,
    ) {
        use rand::Rng;
        let mut krng = StdRng::seed_from_u64(seed);
        let keys: Vec<u64> = (0..n).map(|_| krng.random_range(0..1u64 << 40)).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A17);
        let t = sample_sort::sample_sort_traced(8, &keys, buckets, oversample, &mut rng);
        let (sorted, stats) = &t.value;
        prop_assert_eq!(sorted, &expect);
        prop_assert_eq!(stats.buckets, buckets);
        prop_assert!(stats.max_bucket >= n.div_ceil(buckets));
        prop_assert!(stats.max_bucket <= n);

        let mut maxes: Vec<usize> = (0..5u64)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i.wrapping_mul(7919)));
                sample_sort::sample_sort_traced(8, &keys, buckets, 16, &mut rng).value.1.max_bucket
            })
            .collect();
        maxes.sort_unstable();
        prop_assert!(
            maxes[2] <= 4 * n / buckets,
            "median max bucket {} vs even {}", maxes[2], n / buckets
        );
    }

    /// TraceBuilder invariant: allocations never overlap, and every
    /// recorded request cites a processor below `procs`.
    #[test]
    fn trace_builder_allocations_disjoint(sizes in proptest::collection::vec(0usize..50, 1..30)) {
        let mut tb = TraceBuilder::new(3);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &len in &sizes {
            let base = tb.alloc(len);
            for &(b, l) in &ranges {
                prop_assert!(base >= b + l || base + len as u64 <= b, "overlap");
            }
            ranges.push((base, len as u64));
        }
    }
}
