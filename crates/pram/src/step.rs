//! PRAM steps and their cost under the exclusive/queue/concurrent rules.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// One operation by a virtual processor within a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Read a shared-memory cell.
    Read(u64),
    /// Write a shared-memory cell.
    Write(u64),
    /// `units` of local computation.
    Local(u32),
}

impl Op {
    /// The shared address touched, if any.
    #[must_use]
    pub fn addr(&self) -> Option<u64> {
        match *self {
            Op::Read(a) | Op::Write(a) => Some(a),
            Op::Local(_) => None,
        }
    }

    /// Unit-time length of the operation.
    #[must_use]
    pub fn units(&self) -> u64 {
        match *self {
            Op::Read(_) | Op::Write(_) => 1,
            Op::Local(u) => u64::from(u),
        }
    }
}

/// The memory-access rule a step is charged under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostRule {
    /// Exclusive read, exclusive write: contention > 1 is *illegal*.
    Erew,
    /// Queue read, queue write: a step with maximum location contention
    /// `k` takes `max(t_ops, k)` time \[GMR94b\].
    Qrqw,
    /// Concurrent read, concurrent write: contention is free (included
    /// for comparison; the paper argues this mismodels real machines).
    Crcw,
}

/// One PRAM step: every virtual processor executes its own short
/// sequence of operations, then all synchronize.
///
/// # Example
///
/// ```
/// use dxbsp_pram::{CostRule, Op, Step};
///
/// let mut step = Step::new(4);
/// step.extend_proc(0, [Op::Read(0), Op::Local(2), Op::Write(10)]);
/// step.extend_proc(1, [Op::Read(0)]);
/// // Two readers of cell 0: contention 2; proc 0 runs 4 units of ops.
/// assert_eq!(step.max_contention(), 2);
/// assert_eq!(step.time(CostRule::Qrqw), 4); // max(4, 2)
/// assert_eq!(step.time(CostRule::Crcw), 4);
/// assert!(!step.is_erew_legal());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    n: usize,
    ops: Vec<Vec<Op>>,
}

impl Step {
    /// An empty step over `n` virtual processors.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one virtual processor");
        Self { n, ops: vec![Vec::new(); n] }
    }

    /// Number of virtual processors.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.n
    }

    /// Appends one operation to virtual processor `i`'s sequence.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn push_op(&mut self, i: usize, op: Op) {
        self.ops[i].push(op);
    }

    /// Appends several operations to virtual processor `i`.
    pub fn extend_proc(&mut self, i: usize, ops: impl IntoIterator<Item = Op>) {
        self.ops[i].extend(ops);
    }

    /// The operations of virtual processor `i`.
    #[must_use]
    pub fn ops_of(&self, i: usize) -> &[Op] {
        &self.ops[i]
    }

    /// Total memory operations in the step.
    #[must_use]
    pub fn memory_ops(&self) -> usize {
        self.ops.iter().flatten().filter(|o| o.addr().is_some()).count()
    }

    /// The longest per-processor operation sequence, in time units.
    #[must_use]
    pub fn max_op_units(&self) -> u64 {
        self.ops.iter().map(|seq| seq.iter().map(Op::units).sum::<u64>()).max().unwrap_or(0)
    }

    /// Maximum *read* contention: the most readers any one cell has.
    #[must_use]
    pub fn max_read_contention(&self) -> usize {
        self.phase_contention(true)
    }

    /// Maximum *write* contention: the most writers any one cell has.
    #[must_use]
    pub fn max_write_contention(&self) -> usize {
        self.phase_contention(false)
    }

    fn phase_contention(&self, reads: bool) -> usize {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for op in self.ops.iter().flatten() {
            let addr = match (reads, op) {
                (true, Op::Read(a)) | (false, Op::Write(a)) => *a,
                _ => continue,
            };
            *counts.entry(addr).or_insert(0) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Maximum location contention of the step. A PRAM step has a read
    /// phase and a write phase; contention is counted *per phase*
    /// (the SIMD-QRQW of \[GMR94b\]), so a cell read by one processor and
    /// written by another in the same step has contention 1, not 2.
    #[must_use]
    pub fn max_contention(&self) -> usize {
        self.max_read_contention().max(self.max_write_contention())
    }

    /// Whether the step is legal under the EREW rule: at most one
    /// reader and at most one writer per cell per step.
    #[must_use]
    pub fn is_erew_legal(&self) -> bool {
        self.max_contention() <= 1
    }

    /// Step time under `rule`.
    ///
    /// # Panics
    ///
    /// Panics if `rule` is [`CostRule::Erew`] and the step is illegal
    /// under it — an EREW program with contention is a bug, not a cost.
    #[must_use]
    pub fn time(&self, rule: CostRule) -> u64 {
        let t_ops = self.max_op_units();
        match rule {
            CostRule::Erew => {
                assert!(self.is_erew_legal(), "EREW step has contention > 1");
                t_ops
            }
            CostRule::Qrqw => t_ops.max(self.max_contention() as u64),
            CostRule::Crcw => t_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_step_is_free() {
        let s = Step::new(3);
        assert_eq!(s.time(CostRule::Qrqw), 0);
        assert_eq!(s.max_contention(), 0);
        assert!(s.is_erew_legal());
        assert_eq!(s.memory_ops(), 0);
    }

    #[test]
    fn qrqw_charges_queue_length() {
        let mut s = Step::new(8);
        for i in 0..8 {
            s.push_op(i, Op::Write(99));
        }
        assert_eq!(s.max_contention(), 8);
        assert_eq!(s.time(CostRule::Qrqw), 8);
        assert_eq!(s.time(CostRule::Crcw), 1);
    }

    #[test]
    fn local_work_counts_toward_time_not_contention() {
        let mut s = Step::new(2);
        s.push_op(0, Op::Local(10));
        s.push_op(1, Op::Write(5));
        assert_eq!(s.max_contention(), 1);
        assert_eq!(s.time(CostRule::Qrqw), 10);
        assert_eq!(s.time(CostRule::Erew), 10);
    }

    #[test]
    fn reads_and_writes_count_per_phase() {
        let mut s = Step::new(3);
        s.push_op(0, Op::Read(7));
        s.push_op(1, Op::Write(7));
        s.push_op(2, Op::Read(7));
        // Two readers, one writer: per-phase contention is 2.
        assert_eq!(s.max_read_contention(), 2);
        assert_eq!(s.max_write_contention(), 1);
        assert_eq!(s.max_contention(), 2);
        assert!(!s.is_erew_legal());
    }

    #[test]
    fn read_then_write_of_one_cell_is_erew_legal() {
        // The standard EREW idiom: a processor reads a cell in the read
        // phase and (another or the same) writes it in the write phase.
        let mut s = Step::new(2);
        s.push_op(0, Op::Read(3));
        s.push_op(1, Op::Write(3));
        assert!(s.is_erew_legal());
        assert_eq!(s.max_contention(), 1);
    }

    #[test]
    #[should_panic(expected = "contention")]
    fn erew_rejects_contended_step() {
        let mut s = Step::new(2);
        s.push_op(0, Op::Read(1));
        s.push_op(1, Op::Read(1));
        let _ = s.time(CostRule::Erew);
    }

    #[test]
    fn op_introspection() {
        assert_eq!(Op::Read(4).addr(), Some(4));
        assert_eq!(Op::Write(9).addr(), Some(9));
        assert_eq!(Op::Local(3).addr(), None);
        assert_eq!(Op::Local(3).units(), 3);
        assert_eq!(Op::Read(4).units(), 1);
    }

    #[test]
    fn mixed_sequences_take_the_longest_processor() {
        let mut s = Step::new(2);
        s.extend_proc(0, [Op::Read(1), Op::Local(5), Op::Write(2)]);
        s.extend_proc(1, [Op::Read(3)]);
        assert_eq!(s.max_op_units(), 7);
        assert_eq!(s.time(CostRule::Qrqw), 7);
        assert_eq!(s.memory_ops(), 3);
    }
}
