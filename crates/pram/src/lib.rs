//! # dxbsp-pram — QRQW/EREW PRAMs and their (d,x)-BSP emulation
//!
//! Paper §5 asks when high-level shared-memory models can be mapped
//! efficiently onto high-bandwidth machines with slow banks. The
//! queue-read queue-write (QRQW) PRAM \[GMR94b\] charges a step by its
//! maximum *location* contention — the queue rule — rather than
//! forbidding contention (EREW) or ignoring it (CRCW).
//!
//! This crate provides:
//!
//! * [`step::Step`] / [`program::Program`] — an explicit representation
//!   of PRAM computations by `n` virtual processors, with exact cost
//!   accounting under the QRQW, EREW and CRCW rules;
//! * [`emulate`] — the paper's emulation: virtual processors are packed
//!   onto the `p` physical processors, shared memory is hashed
//!   pseudo-randomly onto the `x·p` banks, and each PRAM step runs as
//!   one (d,x)-BSP superstep. The emulator both *predicts* the cost
//!   (via `dxbsp-core`) and *measures* it (via `dxbsp-machine`);
//! * [`theory`] — the Theorem 5.1 (`x ≤ d`) and Theorem 5.2 (`x ≥ d`)
//!   cost bounds, against which the measured emulations are validated.
//!
//! The theorem statements in the surviving paper text are partial
//! (the archive lost the appendix); `theory` documents exactly which
//! constants are reconstructions.

pub mod bridge;
pub mod builders;
pub mod emulate;
pub mod program;
pub mod step;
pub mod theory;

pub use bridge::{pattern_from_step, step_from_pattern};
pub use emulate::{EmulationReport, Emulator};
pub use program::Program;
pub use step::{CostRule, Op, Step};
pub use theory::{thm51_step_bound, thm52_step_bound, work_overhead_lower_bound};
