//! Bridging machine-level access patterns and PRAM steps.
//!
//! The two representations of a superstep — the machine's
//! [`AccessPattern`] (requests by *physical* processors) and the PRAM's
//! [`Step`] (operations by *virtual* processors) — meet whenever a
//! traced algorithm is re-analyzed under PRAM cost rules or a PRAM
//! program is replayed as raw traffic. This module converts in both
//! directions and proves the conversions preserve the contention
//! quantities both cost models are built on.

use dxbsp_core::{AccessKind, AccessPattern, Request};

use crate::step::{Op, Step};

/// Lifts an access pattern into a PRAM step: each request becomes one
/// operation by a distinct virtual processor (the finest-grained
/// reading, matching "one virtual processor per element" data-parallel
/// code). Empty patterns produce a 1-vproc empty step.
#[must_use]
pub fn step_from_pattern(pat: &AccessPattern) -> Step {
    let n = pat.len().max(1);
    let mut step = Step::new(n);
    for (v, r) in pat.requests().enumerate() {
        let op = match r.kind {
            AccessKind::Read => Op::Read(r.addr),
            AccessKind::Write => Op::Write(r.addr),
        };
        step.push_op(v, op);
    }
    step
}

/// Lowers a PRAM step onto `procs` physical processors: virtual
/// processor `v`'s memory operations are issued by processor
/// `v mod procs` (round-robin, the vectorized assignment). Local ops
/// are dropped — the pattern carries memory traffic only; charge local
/// work separately via [`Step::max_op_units`].
///
/// # Panics
///
/// Panics if `procs == 0`.
#[must_use]
pub fn pattern_from_step(step: &Step, procs: usize) -> AccessPattern {
    assert!(procs >= 1, "need at least one processor");
    let mut pat = AccessPattern::with_capacity(procs, step.memory_ops());
    for v in 0..step.procs() {
        let host = v % procs;
        for op in step.ops_of(v) {
            match *op {
                Op::Read(a) => pat.push(Request::read(host, a)),
                Op::Write(a) => pat.push(Request::write(host, a)),
                Op::Local(_) => {}
            }
        }
    }
    pat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::CostRule;

    fn hot_pattern() -> AccessPattern {
        let mut pat = AccessPattern::new(4);
        for i in 0..10 {
            pat.push(Request::write(i % 4, 7));
        }
        for i in 0..6 {
            pat.push(Request::read(i % 4, 100 + i as u64));
        }
        pat
    }

    #[test]
    fn lifting_preserves_location_contention() {
        let pat = hot_pattern();
        let step = step_from_pattern(&pat);
        // Per-phase contention: ten writers of cell 7, reads all
        // distinct.
        assert_eq!(step.max_write_contention(), 10);
        assert_eq!(step.max_read_contention(), 1);
        assert_eq!(step.max_contention(), pat.contention_profile().max_location_contention);
        assert_eq!(step.memory_ops(), pat.len());
    }

    #[test]
    fn lowering_preserves_traffic_and_contention() {
        let pat = hot_pattern();
        let step = step_from_pattern(&pat);
        let back = pattern_from_step(&step, 4);
        assert_eq!(back.len(), pat.len());
        assert_eq!(
            back.contention_profile().max_location_contention,
            pat.contention_profile().max_location_contention
        );
        // Round-robin lowering balances processor loads exactly (the
        // original pattern's per-processor loads may be less even).
        assert_eq!(back.contention_profile().max_processor_load, pat.len().div_ceil(4));
    }

    #[test]
    fn qrqw_time_of_lifted_step_is_the_queue_bound() {
        let step = step_from_pattern(&hot_pattern());
        assert_eq!(step.time(CostRule::Qrqw), 10);
        assert_eq!(step.time(CostRule::Crcw), 1);
    }

    #[test]
    fn local_ops_are_dropped_in_lowering() {
        let mut step = Step::new(3);
        step.push_op(0, Op::Read(5));
        step.push_op(1, Op::Local(9));
        step.push_op(2, Op::Write(6));
        let pat = pattern_from_step(&step, 2);
        assert_eq!(pat.len(), 2);
    }

    #[test]
    fn empty_pattern_lifts_to_empty_step() {
        let step = step_from_pattern(&AccessPattern::new(2));
        assert_eq!(step.memory_ops(), 0);
        assert!(step.is_erew_legal());
    }

    #[test]
    fn erew_patterns_lift_to_erew_steps() {
        let addrs: Vec<u64> = (0..50).collect();
        let pat = AccessPattern::scatter(4, &addrs);
        assert!(step_from_pattern(&pat).is_erew_legal());
    }
}
