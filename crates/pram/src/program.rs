//! PRAM programs: sequences of synchronized steps.

use serde::{Deserialize, Serialize};

use crate::step::{CostRule, Step};

/// A PRAM program: `n` virtual processors executing a sequence of
/// steps with a barrier between consecutive steps.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    n: usize,
    steps: Vec<Step>,
}

impl Program {
    /// An empty program over `n` virtual processors.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one virtual processor");
        Self { n, steps: Vec::new() }
    }

    /// Virtual processor count.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.n
    }

    /// Appends a step.
    ///
    /// # Panics
    ///
    /// Panics if the step was built for a different processor count.
    pub fn push(&mut self, step: Step) {
        assert_eq!(step.procs(), self.n, "step/processor-count mismatch");
        self.steps.push(step);
    }

    /// The steps in order.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Total time under `rule` (sum over steps).
    #[must_use]
    pub fn time(&self, rule: CostRule) -> u64 {
        self.steps.iter().map(|s| s.time(rule)).sum()
    }

    /// Work under `rule`: `n × time`, the standard charge for an
    /// `n`-processor PRAM.
    #[must_use]
    pub fn work(&self, rule: CostRule) -> u64 {
        self.n as u64 * self.time(rule)
    }

    /// Total memory operations across all steps.
    #[must_use]
    pub fn memory_ops(&self) -> usize {
        self.steps.iter().map(Step::memory_ops).sum()
    }

    /// Largest per-step contention across the program.
    #[must_use]
    pub fn max_contention(&self) -> usize {
        self.steps.iter().map(Step::max_contention).max().unwrap_or(0)
    }

    /// Whether every step obeys the EREW rule.
    #[must_use]
    pub fn is_erew_legal(&self) -> bool {
        self.steps.iter().all(Step::is_erew_legal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::Op;

    fn contended(n: usize, k: usize) -> Step {
        let mut s = Step::new(n);
        for i in 0..k {
            s.push_op(i, Op::Write(0));
        }
        s
    }

    #[test]
    fn time_sums_steps() {
        let mut prog = Program::new(8);
        prog.push(contended(8, 8));
        prog.push(contended(8, 3));
        assert_eq!(prog.time(CostRule::Qrqw), 11);
        assert_eq!(prog.time(CostRule::Crcw), 2);
        assert_eq!(prog.work(CostRule::Qrqw), 88);
        assert_eq!(prog.memory_ops(), 11);
        assert_eq!(prog.max_contention(), 8);
        assert!(!prog.is_erew_legal());
    }

    #[test]
    fn empty_program_is_free() {
        let prog = Program::new(4);
        assert_eq!(prog.time(CostRule::Qrqw), 0);
        assert_eq!(prog.work(CostRule::Erew), 0);
        assert!(prog.is_erew_legal());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_step_rejected() {
        let mut prog = Program::new(4);
        prog.push(Step::new(5));
    }
}
