//! Canonical QRQW/EREW program generators.
//!
//! The §5 emulation experiments need families of PRAM programs with
//! controlled contention. These builders produce the standard shapes:
//! balanced random steps, hot-spot steps, broadcast/reduction trees,
//! and permutation routing — each annotated with its QRQW cost so the
//! emulation sweeps can report slowdown against a known baseline.

use rand::Rng;

use crate::program::Program;
use crate::step::{Op, Step};

/// One step: every vproc writes a distinct pseudo-random cell, except
/// the first `k`, which all write cell 0 (max contention exactly `k`
/// for `k ≥ 1` w.h.p. over the random cells).
#[must_use]
pub fn hotspot_step<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Step {
    let mut step = Step::new(n);
    for v in 0..n {
        let addr = if v < k { 0 } else { 8 + (rng.random::<u64>() >> 8) };
        step.push_op(v, Op::Write(addr));
    }
    step
}

/// A single-step program wrapping [`hotspot_step`].
#[must_use]
pub fn hotspot_program<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Program {
    let mut prog = Program::new(n);
    prog.push(hotspot_step(n, k, rng));
    prog
}

/// EREW broadcast of one cell to `n` vprocs via a binary doubling tree:
/// `⌈lg n⌉` steps, each copying the value to twice as many distinct
/// cells. Contention 1 everywhere — the EREW workaround for what a
/// QRQW machine would do in one contended read.
#[must_use]
pub fn broadcast_tree_program(n: usize) -> Program {
    let mut prog = Program::new(n.max(1));
    let mut have = 1usize;
    while have < n {
        let copy = have.min(n - have);
        let mut step = Step::new(n.max(1));
        for i in 0..copy {
            // vproc i reads cell i and writes cell have + i.
            step.push_op(i, Op::Read(i as u64));
            step.push_op(i, Op::Write((have + i) as u64));
        }
        prog.push(step);
        have += copy;
    }
    prog
}

/// The QRQW broadcast alternative: one step in which all `n` vprocs
/// read cell 0 — contention `n`, QRQW time `n`. Pairing this with
/// [`broadcast_tree_program`] reproduces the paper's central trade-off
/// in its smallest form.
#[must_use]
pub fn broadcast_direct_program(n: usize) -> Program {
    let mut prog = Program::new(n.max(1));
    let mut step = Step::new(n.max(1));
    for v in 0..n {
        step.push_op(v, Op::Read(0));
    }
    prog.push(step);
    prog
}

/// EREW reduction (sum) of `n` cells by pairwise halving: `⌈lg n⌉`
/// steps, contention 1.
#[must_use]
pub fn reduction_program(n: usize) -> Program {
    let mut prog = Program::new(n.max(1));
    let mut width = n;
    while width > 1 {
        let half = width / 2;
        let mut step = Step::new(n.max(1));
        for i in 0..half {
            step.push_op(i, Op::Read(i as u64));
            step.push_op(i, Op::Read((width - 1 - i) as u64));
            step.push_op(i, Op::Local(1));
            step.push_op(i, Op::Write(i as u64));
        }
        prog.push(step);
        width -= half;
    }
    prog
}

/// Permutation routing: each vproc writes one distinct cell chosen by a
/// random permutation — the canonical EREW-legal irregular step.
#[must_use]
pub fn permutation_program<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Program {
    let mut targets: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        targets.swap(i, j);
    }
    let mut prog = Program::new(n.max(1));
    let mut step = Step::new(n.max(1));
    for (v, &t) in targets.iter().enumerate() {
        step.push_op(v, Op::Write(t));
    }
    prog.push(step);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::CostRule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hotspot_contention_is_k() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in [1usize, 7, 100] {
            let prog = hotspot_program(1024, k, &mut rng);
            assert_eq!(prog.max_contention(), k.max(1));
            assert_eq!(prog.time(CostRule::Qrqw), k.max(1) as u64);
        }
    }

    #[test]
    fn broadcast_tree_is_erew_and_logarithmic() {
        for n in [1usize, 2, 5, 64, 1000] {
            let prog = broadcast_tree_program(n);
            assert!(prog.is_erew_legal(), "n={n}");
            let lg = (usize::BITS - n.max(1).leading_zeros()) as usize;
            assert!(prog.steps().len() <= lg, "n={n}: {} steps", prog.steps().len());
            // Every cell 1..n is written exactly once across the program.
            let writes: usize = prog
                .steps()
                .iter()
                .map(|s| {
                    (0..s.procs())
                        .map(|v| s.ops_of(v).iter().filter(|o| matches!(o, Op::Write(_))).count())
                        .sum::<usize>()
                })
                .sum();
            assert_eq!(writes, n.saturating_sub(1));
        }
    }

    #[test]
    fn direct_broadcast_charges_n_under_qrqw() {
        let prog = broadcast_direct_program(256);
        assert_eq!(prog.time(CostRule::Qrqw), 256);
        assert_eq!(prog.time(CostRule::Crcw), 1);
        assert!(!prog.is_erew_legal());
        // The EREW tree is exponentially cheaper in QRQW time.
        let tree = broadcast_tree_program(256);
        assert!(tree.time(CostRule::Qrqw) <= 3 * 8);
    }

    #[test]
    fn reduction_is_erew_with_log_steps() {
        let prog = reduction_program(1000);
        assert!(prog.is_erew_legal());
        assert!(prog.steps().len() <= 10);
        assert!(prog.time(CostRule::Erew) >= 10);
    }

    #[test]
    fn permutation_step_is_erew() {
        let mut rng = StdRng::seed_from_u64(2);
        let prog = permutation_program(500, &mut rng);
        assert!(prog.is_erew_legal());
        assert_eq!(prog.memory_ops(), 500);
        assert_eq!(prog.time(CostRule::Qrqw), 1);
    }

    #[test]
    fn degenerate_sizes_are_fine() {
        assert_eq!(broadcast_tree_program(0).steps().len(), 0);
        assert_eq!(broadcast_tree_program(1).steps().len(), 0);
        assert_eq!(reduction_program(1).steps().len(), 0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(permutation_program(0, &mut rng).memory_ops(), 0);
    }
}
