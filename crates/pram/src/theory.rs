//! The §5 emulation bounds (Theorems 5.1 and 5.2).
//!
//! The surviving text of the paper states the setting of both theorems
//! but the archive copy lost parts of the formal statements; what is
//! explicit is:
//!
//! * for `x ≤ d`, "`(d/x)` is an inevitable work overhead, and \[the
//!   paper provides\] an emulation of the QRQW PRAM on the (d,x)-BSP in
//!   which the overhead matches this factor" (generalizing the BSP
//!   emulation of \[GMR94b\]);
//! * for `x ≥ d`, "a work-preserving emulation … assuming high
//!   bandwidth, where the effect of `d` on the slowdown is partially
//!   compensated for by the expansion factor `x`", with a slowdown that
//!   is "a nonlinear function of the bank delay and the number of banks
//!   per processor"; the analysis uses the Raghavan–Spencer tail bound
//!   for weighted sums of Bernoulli trials.
//!
//! The bound *shapes* below follow those statements and the companion
//! analyses ([GMR94a, GMR94b]); the leading constants (`C_*`) are
//! reconstructions, chosen conservatively and validated empirically in
//! `tests/emulation.rs` against the simulator: measured emulation cost
//! must sit below these bounds across the (d, x, slackness) grid.

use dxbsp_core::MachineParams;

/// Safety constant on the even-spread bank-load term. The expected max
/// load of `n` hashed requests over `B` banks with slackness
/// `n/B ≥ ln B` is `n/B · (1 + o(1))`; 3× absorbs the deviation at the
/// modest slackness the experiments use.
const C_SPREAD: f64 = 3.0;

/// Safety constant on processor-side terms.
const C_PROC: f64 = 2.0;

/// Theorem 5.1 bound (`x ≤ d` regime, stated for one QRQW step):
/// emulating a step with `n_ops` memory operations and maximum location
/// contention `k` on the (d,x)-BSP costs at most
///
/// ```text
/// C_PROC·g·⌈n/p⌉  +  C_SPREAD·d·⌈n/(x·p)⌉  +  d·k  +  L
/// ```
///
/// cycles with high probability over the memory hash. The middle term
/// carries the inevitable `d/x` work overhead: multiplying by `p` gives
/// work `Θ(n·d/x)` when the spread term dominates.
#[must_use]
pub fn thm51_step_bound(m: &MachineParams, n_ops: usize, k: usize) -> u64 {
    let n = n_ops as f64;
    let p = m.p as f64;
    let proc = C_PROC * m.g as f64 * (n / p).ceil();
    let spread = C_SPREAD * m.d as f64 * (n / (m.banks() as f64)).ceil();
    let hot = m.d as f64 * k as f64;
    (proc + spread + hot).ceil() as u64 + m.l
}

/// Theorem 5.2 bound (`x ≥ d` regime): with expansion at or above the
/// bank delay the spread term is absorbed by the processor term, and
/// the residual bank effect is the hot-location charge plus a
/// *nonlinear* deviation term `d·√(n/(x·p))·ln(B)` coming from the
/// Raghavan–Spencer tail on the weighted bank loads:
///
/// ```text
/// C_PROC·g·⌈n/p⌉  +  C_SPREAD·d·(√(n/(x·p))·ln B + ln B)  +  d·k  +  L
/// ```
///
/// As `x` grows past `d` the deviation term shrinks like `1/√x` — the
/// "partially compensated" slowdown of the theorem, and the reason
/// extra banks keep helping beyond `x = d` (§3's expansion result).
#[must_use]
pub fn thm52_step_bound(m: &MachineParams, n_ops: usize, k: usize) -> u64 {
    let n = n_ops as f64;
    let p = m.p as f64;
    let b = m.banks() as f64;
    let per_bank = n / b;
    let proc = C_PROC * m.g as f64 * (n / p).ceil();
    let dev = C_SPREAD * m.d as f64 * (per_bank.sqrt() * b.ln() + b.ln());
    let hot = m.d as f64 * k as f64;
    (proc + dev + hot).ceil() as u64 + m.l
}

/// The bound matching the current machine's regime.
#[must_use]
pub fn step_bound(m: &MachineParams, n_ops: usize, k: usize) -> u64 {
    if (m.x as u64) < m.d {
        thm51_step_bound(m, n_ops, k)
    } else {
        thm51_step_bound(m, n_ops, k).min(thm52_step_bound(m, n_ops, k))
    }
}

/// The paper's observation that `d/x` work overhead is *inevitable*
/// for `x ≤ d`: any emulation placing `n` uniformly-spread requests
/// has some bank receiving `≥ n/(x·p)` of them, which costs
/// `d·n/(x·p)` cycles, i.e. work `≥ n·d/x` — this function returns that
/// lower bound on the work-inflation factor, `max(1, d/(g·x))`.
#[must_use]
pub fn work_overhead_lower_bound(m: &MachineParams) -> f64 {
    (m.d as f64 / (m.g as f64 * m.x as f64)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(p: usize, d: u64, x: usize) -> MachineParams {
        MachineParams::new(p, 1, 0, d, x)
    }

    #[test]
    fn thm51_carries_d_over_x_overhead() {
        // Doubling d doubles the spread term when it dominates.
        let n = 1 << 16;
        let lo = thm51_step_bound(&m(8, 8, 1), n, 1);
        let hi = thm51_step_bound(&m(8, 16, 1), n, 1);
        assert!(hi as f64 / lo as f64 > 1.8, "{hi}/{lo}");
        // Doubling x halves it (asymptotically).
        let wide = thm51_step_bound(&m(8, 8, 2), n, 1);
        assert!((lo as f64 / wide as f64) > 1.6, "{lo}/{wide}");
    }

    #[test]
    fn thm52_deviation_shrinks_with_expansion() {
        let n = 1 << 16;
        let at_d = thm52_step_bound(&m(8, 14, 14), n, 1);
        let beyond = thm52_step_bound(&m(8, 14, 64), n, 1);
        assert!(beyond < at_d, "beyond={beyond} at_d={at_d}");
    }

    #[test]
    fn hot_term_is_linear_in_k() {
        let base = thm52_step_bound(&m(8, 14, 32), 1 << 14, 0);
        let k = 1000;
        let with_k = thm52_step_bound(&m(8, 14, 32), 1 << 14, k);
        assert_eq!(with_k - base, 14 * k as u64);
    }

    #[test]
    fn step_bound_picks_the_regime() {
        let under = m(8, 16, 2);
        assert_eq!(step_bound(&under, 1024, 5), thm51_step_bound(&under, 1024, 5));
        let over = m(8, 4, 16);
        assert!(step_bound(&over, 1024, 5) <= thm51_step_bound(&over, 1024, 5));
        assert!(step_bound(&over, 1024, 5) <= thm52_step_bound(&over, 1024, 5));
    }

    #[test]
    fn inevitable_overhead_formula() {
        assert_eq!(work_overhead_lower_bound(&m(8, 16, 2)), 8.0);
        assert_eq!(work_overhead_lower_bound(&m(8, 4, 16)), 1.0);
        // g > 1 machines reach the floor sooner.
        let fast_mem = MachineParams::new(8, 4, 0, 8, 2);
        assert_eq!(work_overhead_lower_bound(&fast_mem), 1.0);
    }

    #[test]
    fn bounds_include_latency() {
        let lazy = MachineParams::new(8, 1, 500, 14, 32);
        assert!(thm51_step_bound(&lazy, 10, 1) >= 500);
        assert!(thm52_step_bound(&lazy, 10, 1) >= 500);
    }
}
