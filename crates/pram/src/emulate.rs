//! Emulating a QRQW PRAM program on the (d,x)-BSP (paper §5).
//!
//! The emulation is the standard shared-memory simulation the paper
//! builds on: shared memory is mapped to the `x·p` banks by a random
//! hash function; the `n` virtual processors are packed contiguously
//! onto the `p` physical processors (`⌈n/p⌉` each); each PRAM step
//! executes as one (d,x)-BSP superstep in which every physical
//! processor issues the memory requests of its virtual processors and
//! performs their local work.
//!
//! Each PRAM step executes as (up to) two (d,x)-BSP supersteps — its
//! read phase and its write phase — matching the per-phase contention
//! accounting of the SIMD-QRQW. The emulator produces both the
//! *predicted* superstep costs (the `max(L, g·h, d·R)` charge from
//! `dxbsp-core`, with `R` the realized hashed bank load) and the
//! *measured* cycles from the machine simulator, so Theorem 5.1/5.2
//! bounds can be validated empirically.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dxbsp_core::{CostModel, MachineParams, Request};
use dxbsp_hash::{Degree, HashedBanks};
use dxbsp_machine::{ModelBackend, Session, SimulatorBackend};

use crate::program::Program;
use crate::step::{CostRule, Op};

/// Result of emulating one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationReport {
    /// Physical machine parameters.
    pub machine: MachineParams,
    /// Virtual processor count of the emulated program.
    pub virtual_procs: usize,
    /// PRAM time of the program under the QRQW rule.
    pub qrqw_time: u64,
    /// Sum of per-superstep (d,x)-BSP model charges.
    pub predicted_cycles: u64,
    /// Sum of per-superstep simulated cycles (plus `L` per superstep).
    pub measured_cycles: u64,
    /// Per-step `(qrqw, predicted, measured)` triples.
    pub per_step: Vec<(u64, u64, u64)>,
}

impl EmulationReport {
    /// Emulation slowdown: measured (d,x)-BSP cycles per QRQW time
    /// unit. Work-preserving emulations keep `slowdown ≈ c·n/p`.
    #[must_use]
    pub fn slowdown(&self) -> f64 {
        if self.qrqw_time == 0 {
            1.0
        } else {
            self.measured_cycles as f64 / self.qrqw_time as f64
        }
    }

    /// Work inflation: physical work `p × measured` over PRAM work
    /// `n × qrqw_time`. Theorem 5.1 says this is Θ(d/x) for `x ≤ d`;
    /// Theorem 5.2 says it is O(1) for `x ≥ d` given slackness (both up
    /// to the constants discussed in [`crate::theory`]).
    #[must_use]
    pub fn work_ratio(&self) -> f64 {
        let pram_work = self.virtual_procs as u64 * self.qrqw_time;
        if pram_work == 0 {
            1.0
        } else {
            (self.machine.p as u64 * self.measured_cycles) as f64 / pram_work as f64
        }
    }

    /// Prediction quality: measured over predicted cycles.
    #[must_use]
    pub fn prediction_ratio(&self) -> f64 {
        if self.predicted_cycles == 0 {
            1.0
        } else {
            self.measured_cycles as f64 / self.predicted_cycles as f64
        }
    }
}

/// A configured emulator: physical machine + memory hash, executing
/// through two engine [`Session`]s — the simulator backend for
/// *measured* cycles and the closed-form (d,x)-BSP [`ModelBackend`] for
/// *predicted* charges — so both series run the very same phases.
#[derive(Debug, Clone)]
pub struct Emulator {
    machine: MachineParams,
    map: HashedBanks,
    measured: Session<SimulatorBackend>,
    charged: Session<ModelBackend>,
}

impl Emulator {
    /// Creates an emulator for `machine`, drawing the memory hash
    /// (degree-`degree` polynomial) from `rng`.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(machine: MachineParams, degree: Degree, rng: &mut R) -> Self {
        let map = HashedBanks::random(degree, machine.banks(), rng);
        let measured = Session::new(SimulatorBackend::from_params(&machine));
        let charged = Session::new(ModelBackend::new(machine, CostModel::DxBsp));
        Self { machine, map, measured, charged }
    }

    /// The bank mapping in force.
    #[must_use]
    pub fn map(&self) -> &HashedBanks {
        &self.map
    }

    /// The physical processor that hosts virtual processor `v` when
    /// emulating an `n`-vproc program: contiguous blocks of `⌈n/p⌉`.
    #[must_use]
    pub fn host_of(&self, v: usize, n: usize) -> usize {
        let block = n.div_ceil(self.machine.p);
        (v / block).min(self.machine.p - 1)
    }

    /// Emulates `prog`, returning predicted and measured costs. Takes
    /// `&mut self` because the underlying sessions reuse their bank
    /// queues and processor state between phases; the report itself is
    /// independent of any earlier `run`.
    pub fn run(&mut self, prog: &Program) -> EmulationReport {
        let n = prog.procs();
        let p = self.machine.p;
        let mut per_step = Vec::with_capacity(prog.steps().len());
        let mut predicted = 0u64;
        let mut measured = 0u64;

        // Phase buffers come from the measured session's pool: after
        // the first step every PRAM step reuses the same two patterns,
        // so emulation allocates nothing per step.
        let mut reads = self.measured.pool().acquire(p);
        let mut writes = self.measured.pool().acquire(p);
        for step in prog.steps() {
            reads.reset(p);
            writes.reset(p);
            let mut local = vec![0u64; p];
            for v in 0..n {
                let host = self.host_of(v, n);
                for op in step.ops_of(v) {
                    match *op {
                        Op::Read(a) => reads.push(Request::read(host, a)),
                        Op::Write(a) => writes.push(Request::write(host, a)),
                        Op::Local(u) => local[host] += u64::from(u),
                    }
                }
            }
            let local_max = local.into_iter().max().unwrap_or(0);
            let mut pred = local_max;
            let mut meas = local_max;
            for phase in [&reads, &writes] {
                if phase.is_empty() {
                    continue;
                }
                pred += self.charged.step(phase, &self.map).cycles + self.machine.l;
                meas += self.measured.step(phase, &self.map).cycles + self.machine.l;
            }
            predicted += pred;
            measured += meas;
            per_step.push((step.time(CostRule::Qrqw), pred, meas));
        }
        self.measured.pool().release(reads);
        self.measured.pool().release(writes);

        EmulationReport {
            machine: self.machine,
            virtual_procs: n,
            qrqw_time: prog.time(CostRule::Qrqw),
            predicted_cycles: predicted,
            measured_cycles: measured,
            per_step,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::Step;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn machine(p: usize, d: u64, x: usize) -> MachineParams {
        MachineParams::new(p, 1, 0, d, x)
    }

    /// One QRQW step: n vprocs each write a distinct random cell, plus
    /// a hot cell with contention k.
    fn hotspot_program(n: usize, k: usize, seed: u64) -> Program {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut step = Step::new(n);
        for v in 0..n {
            let addr = if v < k { 0 } else { rng.random::<u64>() >> 8 };
            step.push_op(v, Op::Write(addr));
        }
        let mut prog = Program::new(n);
        prog.push(step);
        prog
    }

    #[test]
    fn vproc_packing_is_contiguous_and_complete() {
        let mut rng = StdRng::seed_from_u64(1);
        let emu = Emulator::new(machine(4, 4, 4), Degree::Linear, &mut rng);
        let hosts: Vec<usize> = (0..10).map(|v| emu.host_of(v, 10)).collect();
        assert_eq!(hosts, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        // Fewer vprocs than processors: one each, clamped.
        assert_eq!(emu.host_of(2, 3), 2);
    }

    #[test]
    fn measured_at_least_contention_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = machine(8, 14, 32);
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let rep = emu.run(&hotspot_program(1024, 300, 3));
        // The hot cell's bank serializes at least d·k cycles.
        assert!(rep.measured_cycles >= 14 * 300);
        assert!(rep.predicted_cycles >= 14 * 300);
        assert_eq!(rep.qrqw_time, 300);
    }

    #[test]
    fn low_contention_emulation_is_roughly_work_preserving() {
        let mut rng = StdRng::seed_from_u64(4);
        // Balanced machine x ≥ d with plenty of slack: work ratio O(1).
        let m = machine(8, 8, 16);
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let rep = emu.run(&hotspot_program(64 * 1024, 1, 5));
        assert!(rep.work_ratio() < 3.0, "work ratio {}", rep.work_ratio());
        // And prediction tracks measurement within a small factor.
        assert!(rep.prediction_ratio() < 2.0 && rep.prediction_ratio() > 0.5);
    }

    #[test]
    fn underbanked_machine_pays_d_over_x() {
        let mut rng = StdRng::seed_from_u64(6);
        // x = 1, d = 8: every bank absorbs ~n/p requests at 8 cycles
        // each → work ratio ≈ d/x = 8 (times small constants).
        let m = machine(8, 8, 1);
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let rep = emu.run(&hotspot_program(32 * 1024, 1, 7));
        assert!(rep.work_ratio() > 4.0, "work ratio {}", rep.work_ratio());
        assert!(rep.work_ratio() < 16.0, "work ratio {}", rep.work_ratio());
    }

    #[test]
    fn local_work_accumulates_on_hosts() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = machine(2, 2, 2);
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let mut step = Step::new(4);
        for v in 0..4 {
            step.push_op(v, Op::Local(10));
        }
        let mut prog = Program::new(4);
        prog.push(step);
        let rep = emu.run(&prog);
        // Two vprocs per host → 20 local units each, no memory traffic.
        assert_eq!(rep.measured_cycles, 20);
        assert_eq!(rep.predicted_cycles, 20);
    }

    #[test]
    fn empty_program_reports_unity_ratios() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut emu = Emulator::new(machine(2, 2, 2), Degree::Linear, &mut rng);
        let rep = emu.run(&Program::new(4));
        assert_eq!(rep.measured_cycles, 0);
        assert_eq!(rep.slowdown(), 1.0);
        assert_eq!(rep.work_ratio(), 1.0);
    }
}
