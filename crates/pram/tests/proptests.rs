//! Property tests for the PRAM cost algebra and the emulation.

use dxbsp_core::MachineParams;
use dxbsp_hash::Degree;
use dxbsp_pram::{theory, CostRule, Emulator, Op, Program, Step};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_step(n: usize) -> impl Strategy<Value = Step> {
    proptest::collection::vec(
        (
            0..n,
            prop_oneof![
                (0u64..64).prop_map(Op::Read),
                (0u64..64).prop_map(Op::Write),
                (1u32..5).prop_map(Op::Local),
            ],
        ),
        0..150,
    )
    .prop_map(move |ops| {
        let mut step = Step::new(n);
        for (v, op) in ops {
            step.push_op(v, op);
        }
        step
    })
}

proptest! {
    /// The queue rule never charges less than the concurrent rule and
    /// equals max(ops, contention) exactly.
    #[test]
    fn qrqw_cost_is_max_of_ops_and_contention(step in arb_step(8)) {
        let qrqw = step.time(CostRule::Qrqw);
        let crcw = step.time(CostRule::Crcw);
        prop_assert!(qrqw >= crcw);
        prop_assert_eq!(qrqw, step.max_op_units().max(step.max_contention() as u64));
        if step.is_erew_legal() {
            prop_assert_eq!(step.time(CostRule::Erew), crcw);
        }
    }

    /// Program time is the sum of step times; work is n × time.
    #[test]
    fn program_cost_is_additive(steps in proptest::collection::vec(arb_step(6), 0..10)) {
        let mut prog = Program::new(6);
        let mut expect = 0u64;
        for s in steps {
            expect += s.time(CostRule::Qrqw);
            prog.push(s);
        }
        prop_assert_eq!(prog.time(CostRule::Qrqw), expect);
        prop_assert_eq!(prog.work(CostRule::Qrqw), 6 * expect);
    }

    /// On arbitrary (even adversarially unbalanced) single-step
    /// programs, the emulated cost respects the d·k floor and stays
    /// within a small factor of the emulator's own (d,x)-BSP charge —
    /// prediction quality, the paper's core claim.
    #[test]
    fn emulation_floor_and_prediction_quality(
        step in arb_step(64),
        d in 1u64..=16,
        x in 1usize..=16,
        seed in 0u64..1000,
    ) {
        let mut prog = Program::new(64);
        let k = step.max_contention();
        prog.push(step);
        let m = MachineParams::new(4, 1, 0, d, x);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let rep = emu.run(&prog);
        prop_assert!(rep.measured_cycles >= d * k as u64,
            "measured {} below d·k = {}", rep.measured_cycles, d * k as u64);
        prop_assert!(rep.measured_cycles <= 2 * rep.predicted_cycles + 4 * m.d + 4,
            "measured {} far above charge {}", rep.measured_cycles, rep.predicted_cycles);
    }

    /// In the theorems' own setting — one memory op per virtual
    /// processor, contention from a shared hot cell, ample slackness —
    /// the measured emulation cost sits below the reconstructed
    /// Theorem 5.1/5.2 bounds (doubled for the two phase supersteps).
    #[test]
    fn emulation_bounded_in_theorem_setting(
        d in 1u64..=16,
        x in 1usize..=16,
        k in 1usize..=512,
        seed in 0u64..1000,
    ) {
        let n = 4096usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let prog = dxbsp_pram::builders::hotspot_program(n, k, &mut rng);
        let m = MachineParams::new(4, 1, 0, d, x);
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let rep = emu.run(&prog);
        let bound = 2 * theory::step_bound(&m, n, k);
        prop_assert!(rep.measured_cycles <= bound,
            "measured {} above bound {} at d={d} x={x} k={k}", rep.measured_cycles, bound);
    }

    /// The inevitable-overhead floor is monotone: slower banks raise
    /// it, more banks lower it, and it never goes below 1.
    #[test]
    fn work_overhead_floor_monotone(d in 1u64..=32, x in 1usize..=32) {
        let m = MachineParams::new(8, 1, 0, d, x);
        let f = theory::work_overhead_lower_bound(&m);
        prop_assert!(f >= 1.0);
        prop_assert!(theory::work_overhead_lower_bound(&m.with_delay(d + 1)) >= f);
        prop_assert!(theory::work_overhead_lower_bound(&m.with_expansion(x + 1)) <= f);
    }

    /// Theory bounds are monotone in the request count and contention.
    #[test]
    fn theory_bounds_monotone(n in 0usize..100_000, k in 0usize..1000, d in 1u64..=32, x in 1usize..=64) {
        let m = MachineParams::new(8, 1, 0, d, x);
        for bound in [theory::thm51_step_bound, theory::thm52_step_bound] {
            let base = bound(&m, n, k);
            prop_assert!(bound(&m, n + 1, k) >= base);
            prop_assert!(bound(&m, n, k + 1) >= base);
        }
        prop_assert!(theory::step_bound(&m, n, k) <= theory::thm51_step_bound(&m, n, k));
    }
}
