#!/usr/bin/env bash
# Run a cargo command with the registry dependencies patched to the
# functional stubs in devstubs/ (see devstubs/README.md). For build
# hosts with no registry access; a normal host should not use this.
#
# Usage: scripts/offline-dev.sh cargo <subcommand> [args...]
#
# The patch is applied via `--config` on the command line only — the
# committed manifests and any .cargo/config.toml are untouched, and no
# registry is ever contacted (--offline).
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

if [ "${1:-}" != "cargo" ]; then
    echo "usage: $0 cargo <subcommand> [args...]" >&2
    exit 2
fi
shift

flags=(--offline)
for dep in rand serde bytes proptest criterion; do
    flags+=(--config "patch.crates-io.${dep}.path='${root}/devstubs/${dep}'")
done

exec cargo "${flags[@]}" "$@"
