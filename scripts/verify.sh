#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
#
#   scripts/verify.sh
#
# Tier-1 (build + tests) must pass for every commit; clippy and fmt
# keep the workspace warning-free and uniformly formatted.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --workspace --no-run
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# Smoke-test the scenario pipeline end to end: a committed scenario
# file must load, validate, run, and emit JSON-lines records.
target/release/dxbench list >/dev/null
target/release/dxbench run examples/scenarios/exp1_quick.toml --json /tmp/dxbench-smoke.jsonl >/dev/null
grep -q '"measured"' /tmp/dxbench-smoke.jsonl
rm -f /tmp/dxbench-smoke.jsonl

# Smoke-test hybrid execution: the builtin hybrid sweep must run with
# every point charged closed-form, and --check-hybrid must confirm the
# charges against the event-level simulator within the declared bound.
# (captured, not piped: `grep -q` would close the pipe mid-table and
# fail the run with SIGPIPE under pipefail)
hybrid_out="$(target/release/dxbench run exp4_hybrid --quick --check-hybrid)"
grep -q 'check-hybrid: .* within declared bound' <<<"$hybrid_out"

# Smoke-test the mixed-tier path: the fused C90/J90 builtin must run
# on the per-bank delay model, carry the tiered prediction column, and
# surface the model in the dxsim replay header.
mixed_out="$(target/release/dxbench run exp1_mixed --quick)"
grep -q 'tiered-pred' <<<"$mixed_out"
target/release/dxtrace scatter --n 4096 --contention 512 -o /tmp/dxsim-smoke.dxtr >/dev/null
tiers_out="$(target/release/dxsim --trace /tmp/dxsim-smoke.dxtr --tiers 0..128=6,128..256=14)"
grep -q 'delay:   per-bank(d=6 x128, d=14 x128)' <<<"$tiers_out"
rm -f /tmp/dxsim-smoke.dxtr

# Smoke-test the profiler: dxprof on a committed scenario must emit a
# Chrome trace that parses as JSON and Prometheus output that lints
# (non-comment lines are `name{labels} value` with a numeric value).
target/release/dxprof --scenario examples/scenarios/exp1_quick.toml \
    --chrome /tmp/dxprof-smoke.chrome.json \
    --prom /tmp/dxprof-smoke.prom >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/dxprof-smoke.chrome.json") as f:
    trace = json.load(f)
assert trace["traceEvents"], "empty chrome trace"
with open("/tmp/dxprof-smoke.prom") as f:
    samples = [l for l in f if l.strip() and not l.startswith("#")]
assert samples, "no prometheus samples"
for line in samples:
    name, _, value = line.rpartition(" ")
    assert name, f"malformed sample: {line!r}"
    float(value)
EOF
rm -f /tmp/dxprof-smoke.chrome.json /tmp/dxprof-smoke.prom
