#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
#
#   scripts/verify.sh
#
# Tier-1 (build + tests) must pass for every commit; clippy and fmt
# keep the workspace warning-free and uniformly formatted.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --workspace --no-run
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# Smoke-test the scenario pipeline end to end: a committed scenario
# file must load, validate, run, and emit JSON-lines records.
target/release/dxbench list >/dev/null
target/release/dxbench run examples/scenarios/exp1_quick.toml --json /tmp/dxbench-smoke.jsonl >/dev/null
grep -q '"measured"' /tmp/dxbench-smoke.jsonl
rm -f /tmp/dxbench-smoke.jsonl

# Smoke-test hybrid execution: the builtin hybrid sweep must run with
# every point charged closed-form, and --check-hybrid must confirm the
# charges against the event-level simulator within the declared bound.
# (captured, not piped: `grep -q` would close the pipe mid-table and
# fail the run with SIGPIPE under pipefail)
hybrid_out="$(target/release/dxbench run exp4_hybrid --quick --check-hybrid)"
grep -q 'check-hybrid: .* within declared bound' <<<"$hybrid_out"

# Smoke-test the mixed-tier path: the fused C90/J90 builtin must run
# on the per-bank delay model, carry the tiered prediction column, and
# surface the model in the dxsim replay header.
mixed_out="$(target/release/dxbench run exp1_mixed --quick)"
grep -q 'tiered-pred' <<<"$mixed_out"
target/release/dxtrace scatter --n 4096 --contention 512 -o /tmp/dxsim-smoke.dxtr >/dev/null
tiers_out="$(target/release/dxsim --trace /tmp/dxsim-smoke.dxtr --tiers 0..128=6,128..256=14)"
grep -q 'delay:   per-bank(d=6 x128, d=14 x128)' <<<"$tiers_out"
rm -f /tmp/dxsim-smoke.dxtr

# Smoke-test the workload families: the sorting sweep must surface
# bucket balance alongside the QRQW/EREW predictions, and the
# pseudo-streaming kernels must report a peak-resident watermark no
# larger than the declared chunk budget in the JSON records.
sort_out="$(target/release/dxbench run sort_oversample --quick)"
grep -q 'balance' <<<"$sort_out"
grep -q 'bsp-pred' <<<"$sort_out"
target/release/dxbench run pstream_scan --quick --json /tmp/dxbench-pstream.jsonl >/dev/null
grep -q '"peak_resident"' /tmp/dxbench-pstream.jsonl
python3 - <<'EOF'
import json
with open("/tmp/dxbench-pstream.jsonl") as f:
    records = [json.loads(l) for l in f if l.strip()]
assert records, "no pstream records"
for r in records:
    v = r["values"]
    assert v["peak_resident"] <= v["budget"], r
EOF
rm -f /tmp/dxbench-pstream.jsonl

# Smoke-test the profiler: dxprof on a committed scenario must emit a
# Chrome trace that parses as JSON and Prometheus output that lints
# (non-comment lines are `name{labels} value` with a numeric value).
target/release/dxprof --scenario examples/scenarios/exp1_quick.toml \
    --chrome /tmp/dxprof-smoke.chrome.json \
    --prom /tmp/dxprof-smoke.prom >/dev/null
python3 - <<'EOF'
import json
with open("/tmp/dxprof-smoke.chrome.json") as f:
    trace = json.load(f)
assert trace["traceEvents"], "empty chrome trace"
with open("/tmp/dxprof-smoke.prom") as f:
    samples = [l for l in f if l.strip() and not l.startswith("#")]
assert samples, "no prometheus samples"
for line in samples:
    name, _, value = line.rpartition(" ")
    assert name, f"malformed sample: {line!r}"
    float(value)
EOF
rm -f /tmp/dxprof-smoke.chrome.json /tmp/dxprof-smoke.prom

# Smoke-test the service front-end: dxserved on an ephemeral port must
# stream POST /run records byte-identical to `dxbench run --json`,
# expose lintable live /metrics, and absorb a small dxbench storm.
target/release/dxserved >/tmp/dxserved-smoke.log &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    serve_addr="$(sed -n 's/^dxserved: listening on //p' /tmp/dxserved-smoke.log)"
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
[ -n "$serve_addr" ] || { echo "dxserved never came up"; exit 1; }
target/release/dxbench run examples/scenarios/exp1_quick.toml --json /tmp/dxserved-want.jsonl >/dev/null
python3 - "$serve_addr" <<'EOF'
import sys, urllib.request
addr = sys.argv[1]
with open("examples/scenarios/exp1_quick.toml", "rb") as f:
    spec = f.read()
assert urllib.request.urlopen(f"http://{addr}/healthz").read() == b"ok\n"
got = urllib.request.urlopen(
    urllib.request.Request(f"http://{addr}/run", data=spec, method="POST")
).read()
with open("/tmp/dxserved-want.jsonl", "rb") as f:
    want = f.read()
assert got == want, "served records differ from dxbench run --json"
metrics = urllib.request.urlopen(f"http://{addr}/metrics").read().decode()
samples = [l for l in metrics.splitlines() if l.strip() and not l.startswith("#")]
assert samples, "no metrics samples"
for line in samples:
    name, _, value = line.rpartition(" ")
    assert name, f"malformed sample: {line!r}"
    float(value)
EOF
storm_out="$(target/release/dxbench storm examples/scenarios/exp1_quick.toml \
    --addr "$serve_addr" --clients 8 --requests 64)"
grep -q 'identical to dxbench run' <<<"$storm_out"
grep -q 'lint clean' <<<"$storm_out"
storm_ka_out="$(target/release/dxbench storm examples/scenarios/exp1_quick.toml \
    --addr "$serve_addr" --clients 8 --requests 64 --keep-alive)"
grep -q 'identical to dxbench run' <<<"$storm_ka_out"
kill "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f /tmp/dxserved-smoke.log /tmp/dxserved-want.jsonl
