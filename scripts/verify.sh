#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
#
#   scripts/verify.sh
#
# Tier-1 (build + tests) must pass for every commit; clippy and fmt
# keep the workspace warning-free and uniformly formatted.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --workspace --no-run
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

# Smoke-test the scenario pipeline end to end: a committed scenario
# file must load, validate, run, and emit JSON-lines records.
target/release/dxbench list >/dev/null
target/release/dxbench run examples/scenarios/exp1_quick.toml --json /tmp/dxbench-smoke.jsonl >/dev/null
grep -q '"measured"' /tmp/dxbench-smoke.jsonl
rm -f /tmp/dxbench-smoke.jsonl
