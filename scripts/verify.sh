#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
#
#   scripts/verify.sh
#
# Tier-1 (build + tests) must pass for every commit; clippy and fmt
# keep the workspace warning-free and uniformly formatted.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo bench --workspace --no-run
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
