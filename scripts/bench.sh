#!/usr/bin/env bash
# Run the simulator Criterion benches and emit machine-readable medians.
#
#   scripts/bench.sh --baseline   run benches, snapshot medians to
#                                 BENCH_baseline.json (not committed)
#   scripts/bench.sh --check      run benches, compare fresh medians
#                                 against the committed BENCH_sim.json
#                                 pins; print a table and exit nonzero
#                                 if any tracked bench regressed >15%
#   scripts/bench.sh              run benches, write BENCH_sim.json at
#                                 the repo root with the current median
#                                 ns/op per bench plus, when a baseline
#                                 snapshot exists, baseline_ns and
#                                 speedup (baseline/current) per bench
#
# Works with real criterion or the devstubs harness: both write
# target/criterion/<group>/<bench>/new/estimates.json with
# median.point_estimate in nanoseconds, which is all this scrapes.
# On hosts without registry access the benches are built through
# scripts/offline-dev.sh automatically.
#
# The scrape includes the sim/probe group, which records the telemetry
# seam's overhead: sim/probe/noop must track sim/probe/unprobed within
# ~2% (the zero-cost-when-disabled guard), and sim/probe/recorder is
# the tracked price of running with full telemetry on.
#
# It also includes the sim/sweep_throughput group, which pins hybrid
# sweep throughput: hybrid_grid_1600 covers 100x the points of
# full_grid_16 and must stay well under 100x its wall-clock (the
# classify-once-per-row, charge-per-point payoff).
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$root"

mode=current
case "${1:-}" in
--baseline) mode=baseline ;;
--check) mode=check ;;
esac

bench_cmd=(cargo bench --bench simulator)
if ! cargo bench --bench simulator --no-run >/dev/null 2>&1; then
    bench_cmd=(scripts/offline-dev.sh cargo bench --bench simulator)
fi

rm -rf target/criterion
"${bench_cmd[@]}"

MODE="$mode" python3 - <<'EOF'
import json, os, time

root = "target/criterion"
medians = {}
for dirpath, _dirnames, filenames in os.walk(root):
    if "estimates.json" not in filenames or os.path.basename(dirpath) != "new":
        continue
    bench_id = os.path.relpath(os.path.dirname(dirpath), root).replace(os.sep, "/")
    with open(os.path.join(dirpath, "estimates.json")) as f:
        medians[bench_id] = json.load(f)["median"]["point_estimate"]

if not medians:
    raise SystemExit("no criterion estimates found under target/criterion")

stamp = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())
if os.environ["MODE"] == "check":
    # Regression gate: fresh medians vs the committed BENCH_sim.json
    # pins. Benches new since the pin (no entry) are reported but never
    # fail the gate; tracked benches more than 15% slower do.
    if not os.path.exists("BENCH_sim.json"):
        raise SystemExit("--check needs a committed BENCH_sim.json (run scripts/bench.sh first)")
    with open("BENCH_sim.json") as f:
        pinned = {k: v["median_ns"] for k, v in json.load(f)["benches"].items()}
    threshold = 0.15
    regressions = []
    print(f"{'bench':<40} {'pinned ns':>14} {'current ns':>14} {'delta':>8}")
    for bench_id, ns in sorted(medians.items()):
        if bench_id not in pinned:
            print(f"{bench_id:<40} {'(new)':>14} {ns:>14.1f} {'-':>8}")
            continue
        base = pinned[bench_id]
        delta = (ns - base) / base if base else 0.0
        flag = "  REGRESSED" if delta > threshold else ""
        print(f"{bench_id:<40} {base:>14.1f} {ns:>14.1f} {delta:>+7.1%}{flag}")
        if delta > threshold:
            regressions.append((bench_id, base, ns, delta))
    for bench_id in sorted(set(pinned) - set(medians)):
        print(f"{bench_id:<40} {pinned[bench_id]:>14.1f} {'(missing)':>14} {'-':>8}")
    if regressions:
        raise SystemExit(
            f"{len(regressions)} bench(es) regressed more than {threshold:.0%} vs BENCH_sim.json"
        )
    print(f"ok: {len(medians)} benches within {threshold:.0%} of BENCH_sim.json pins")
elif os.environ["MODE"] == "baseline":
    with open("BENCH_baseline.json", "w") as f:
        json.dump({"captured_utc": stamp, "medians_ns": medians}, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote BENCH_baseline.json ({len(medians)} benches)")
else:
    baseline = {}
    if os.path.exists("BENCH_baseline.json"):
        with open("BENCH_baseline.json") as f:
            baseline = json.load(f).get("medians_ns", {})
    benches = {}
    for bench_id, ns in sorted(medians.items()):
        entry = {"median_ns": round(ns, 1)}
        if bench_id in baseline:
            entry["baseline_ns"] = round(baseline[bench_id], 1)
            entry["speedup"] = round(baseline[bench_id] / ns, 3) if ns else None
        benches[bench_id] = entry
    with open("BENCH_sim.json", "w") as f:
        json.dump({"captured_utc": stamp, "benches": benches}, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote BENCH_sim.json ({len(medians)} benches)")
    for bench_id, e in benches.items():
        extra = f"  ({e['speedup']}x vs baseline)" if "speedup" in e else ""
        print(f"  {bench_id:<40} {e['median_ns']:>14.1f} ns{extra}")
EOF
